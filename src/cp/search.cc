#include "search.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "bounds.hh"
#include "nogood.hh"
#include "parallel_search.hh"
#include "profile.hh"
#include "propagate.hh"
#include "support/arena.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace hilp {
namespace cp {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * With tracing enabled, one progress instant is emitted per this
 * many search nodes (power of two) so the timeline shows how deep
 * into the tree the search is without an event per node.
 */
constexpr int64_t kNodeTraceSample = 8192;

/**
 * All mutable search state lives here. The search owns the branching
 * decisions (eligible set, assignment, branch order); everything
 * about bounds and feasibility is delegated to the propagation
 * engine, which runs its propagators to fixpoint per node and
 * unwinds placements exactly through its trail.
 */
class Searcher
{
  public:
    Searcher(const Model &model, const ScheduleVec *warm_start,
             const SearchLimits &limits)
        : model_(model),
          limits_(limits),
          engine_(model, limits.packedLayout),
          packed_(limits.packedLayout),
          cp_(criticalPathData(model)),
          startTime_(Clock::now())
    {
        engine_.add(makeTimetablePropagator(model));
        engine_.add(makeDisjunctivePropagator(model));
        engine_.add(makePrecedencePropagator(model));
        if (limits.energeticReasoning)
            engine_.add(makeEnergeticPropagator(model));

        const int n = model.numTasks();
        if (!packed_) {
            // Legacy path: per-depth preallocated scratch frames, so
            // a node never allocates either. Depth never exceeds the
            // task count.
            size_t max_modes = 1;
            for (int t = 0; t < n; ++t)
                max_modes = std::max(max_modes,
                                     model.task(t).modes.size());
            frames_.resize(static_cast<size_t>(n) + 1);
            for (Frame &frame : frames_) {
                frame.tasks.reserve(static_cast<size_t>(n));
                frame.options.reserve(max_modes);
            }
        }
        assign_.assign(n, Assignment{});
        end_.assign(n, 0);
        est_.assign(n, 0);
        remainingPreds_.assign(n, 0);
        for (int t = 0; t < n; ++t) {
            remainingPreds_[t] =
                static_cast<int>(model.predecessors(t).size()) +
                static_cast<int>(model.lagPredecessors(t).size());
        }
        eligiblePos_.assign(n, -1);
        for (int t = 0; t < n; ++t)
            if (remainingPreds_[t] == 0)
                addEligible(t);

        if (limits.useNogoods)
            nogoods_.reset(new NogoodStore(limits.nogoodCapacity));

        ub_ = model.horizon() + 1;
        if (warm_start) {
            result_.foundSolution = true;
            result_.best = *warm_start;
            result_.bestMakespan = warm_start->makespan(model);
            ub_ = result_.bestMakespan;
        }
    }

    SearchResult
    run()
    {
        trace::Span span("cp.search",
                         trace::Arg::intArg("tasks", model_.numTasks()));
        // Heap growth across the tree walk is the search's true
        // scratch-allocation cost: everything committed up front
        // (frames, slabs, arena warm-up) is excluded, so a steady
        // state of zero reports as zero.
        int64_t scratch_before = scratchHeapBytes();
        if (gapReached())
            stop_ = true;
        else
            dfs(0);
        result_.exhausted = !stop_ && !limitHit_;
        result_.propagators = engine_.stats();
        result_.scratchBytes = scratchHeapBytes() - scratch_before;
        result_.arenaHighWater = static_cast<int64_t>(
            nodeArena_.highWater() +
            engine_.stateArena().highWater());
        result_.arenaRewinds = nodeArena_.rewinds() +
                               engine_.stateArena().rewinds();
        span.arg(trace::Arg::intArg("nodes", result_.nodes));
        span.arg(trace::Arg::intArg("backtracks", result_.backtracks));
        flushMetrics();
        return result_;
    }

  private:
    void
    addEligible(int t)
    {
        eligiblePos_[t] = static_cast<int>(eligible_.size());
        eligible_.push_back(t);
    }

    /**
     * O(1) swap-remove from the eligible set. The set's internal
     * order is irrelevant: every node copies and re-sorts it into
     * branch_tasks, so the branch order stays deterministic.
     */
    void
    removeEligible(int t)
    {
        int pos = eligiblePos_[t];
        hilp_assert(pos >= 0 && eligible_[pos] == t);
        int last = eligible_.back();
        eligible_[pos] = last;
        eligiblePos_[last] = pos;
        eligible_.pop_back();
        eligiblePos_[t] = -1;
    }

    /** True when the incumbent already satisfies the target gap. */
    bool
    gapReached() const
    {
        if (!result_.foundSolution || limits_.targetGap <= 0.0)
            return false;
        if (result_.bestMakespan <= 0)
            return true;
        double gap =
            static_cast<double>(result_.bestMakespan - limits_.lowerBound) /
            static_cast<double>(result_.bestMakespan);
        return gap <= limits_.targetGap;
    }

    /** Periodically poll the wall-clock and node budgets. */
    bool
    limitsExceeded()
    {
        if (result_.nodes >= limits_.maxNodes) {
            limitHit_ = true;
            return true;
        }
        if ((result_.nodes & 1023) == 0) {
            Clock::time_point now = Clock::now();
            double elapsed = std::chrono::duration<double>(
                now - startTime_).count();
            if (elapsed >= limits_.maxSeconds ||
                now >= limits_.deadline) {
                limitHit_ = true;
                return true;
            }
        }
        return false;
    }

    /**
     * Flush per-search totals into the process-wide metrics registry.
     * Done once per run (not per node) so metrics collection costs
     * nothing measurable on the search hot path.
     */
    void
    flushMetrics()
    {
        metrics::counter("cp.search.nodes").add(result_.nodes);
        metrics::counter("cp.search.backtracks").add(result_.backtracks);
        metrics::counter("cp.search.solutions").add(result_.solutions);
        int64_t invocations = 0;
        int64_t prunings = 0;
        for (const PropagatorStats &stats : result_.propagators) {
            invocations += stats.invocations;
            prunings += stats.prunings;
        }
        metrics::counter("cp.propagations").add(invocations);
        metrics::counter("cp.prunings").add(prunings);
        if (nogoods_) {
            metrics::counter("cp.nogood.hits").add(result_.nogoodHits);
            metrics::counter("cp.nogood.recorded")
                .add(result_.nogoodsRecorded);
        }
        metrics::gauge("hilp.arena.bytes").set(static_cast<double>(
            nodeArena_.heapBytes() +
            engine_.stateArena().heapBytes()));
        metrics::gauge("hilp.arena.highwater").set(
            static_cast<double>(result_.arenaHighWater));
        metrics::counter("hilp.arena.rewinds")
            .add(result_.arenaRewinds);
    }

    /**
     * Heap bytes currently committed to search scratch: the node and
     * engine-state arenas, the profile's occupancy storage, and (on
     * the legacy path) the per-depth frames.
     */
    int64_t
    scratchHeapBytes() const
    {
        size_t bytes = nodeArena_.heapBytes() +
                       engine_.stateArena().heapBytes() +
                       engine_.profile().heapBytes();
        for (const Frame &frame : frames_) {
            bytes += frame.tasks.capacity() * sizeof(int);
            bytes += frame.options.capacity() * sizeof(Option);
        }
        return static_cast<int64_t>(bytes);
    }

    void
    recordIncumbent(Time makespan)
    {
        result_.foundSolution = true;
        result_.best.tasks = assign_;
        result_.bestMakespan = makespan;
        ub_ = makespan;
        ++result_.solutions;
        if (trace::enabled()) {
            double gap = makespan > 0
                ? static_cast<double>(makespan - limits_.lowerBound) /
                  static_cast<double>(makespan)
                : 0.0;
            trace::instant("cp.incumbent",
                           trace::Arg::intArg("makespan", makespan),
                           trace::Arg::numArg("gap", gap));
        }
        if (gapReached())
            stop_ = true;
    }

    void
    dfs(Time makespan)
    {
        ++result_.nodes;
        if ((result_.nodes & (kNodeTraceSample - 1)) == 0)
            TRACE_INSTANT("cp.nodes",
                          trace::Arg::intArg("nodes", result_.nodes));
        if (stop_ || limitsExceeded())
            return;
        const int n = model_.numTasks();
        if (scheduled_ == n) {
            recordIncumbent(makespan);
            return;
        }
        // A recorded no-good proves every completion of this
        // placement set is >= its bound; prune when that cannot beat
        // the incumbent.
        if (nogoods_ && scheduled_ > 0) {
            Time known = nogoods_->lookup(hash_);
            if (known != NogoodStore::kNoBound && known >= ub_) {
                ++result_.nogoodHits;
                return;
            }
        }
        PropagationContext ctx{model_, cp_, assign_, end_,
                               makespan, limits_.lowerBound, ub_,
                               est_};
        Time node_bound = engine_.fixpoint(ctx);
        if (node_bound >= ub_) {
            // The propagators certified this bound against any
            // completion of the placements, so it can be recorded.
            if (nogoods_ && scheduled_ > 0) {
                nogoods_->record(hash_, node_bound, scheduled_);
                ++result_.nogoodsRecorded;
            }
            return;
        }

        // Branch over all eligible tasks, longest tail first. The
        // branch order and per-task option lists live in arena
        // scratch released wholesale when the node unwinds (packed
        // layout) or in this depth's preallocated frame (legacy
        // layout) — either way no node allocates in steady state.
        const size_t num_branch = eligible_.size();
        support::Arena::Scope scope(packed_ ? &nodeArena_ : nullptr);
        Frame *frame = packed_ ? nullptr : &frames_[scheduled_];
        int *branch_tasks;
        if (packed_) {
            branch_tasks = nodeArena_.allocArray<int>(num_branch);
        } else {
            frame->tasks.resize(num_branch);
            branch_tasks = frame->tasks.data();
        }
        std::copy(eligible_.begin(), eligible_.end(), branch_tasks);
        std::sort(branch_tasks, branch_tasks + num_branch,
                  [this](int a, int b) {
                      if (cp_.tail[a] != cp_.tail[b])
                          return cp_.tail[a] > cp_.tail[b];
                      return a < b;
                  });

        const Profile &profile = engine_.profile();
        for (size_t bi = 0; bi < num_branch; ++bi) {
            int t = branch_tasks[bi];
            Time est = 0;
            for (int p : model_.predecessors(t))
                est = std::max(est, end_[p]);
            for (const Model::LagEdge &edge :
                 model_.lagPredecessors(t))
                est = std::max(est, assign_[edge.other].start +
                                    edge.lag);

            const Task &task = model_.task(t);
            // Enumerate feasible (mode, start) options; sort by
            // completion time so promising branches go first.
            Option *options;
            if (packed_) {
                options = nodeArena_.allocArray<Option>(
                    task.modes.size());
            } else {
                frame->options.resize(task.modes.size());
                options = frame->options.data();
            }
            size_t num_options = 0;
            Time tail_after = cp_.tail[t] - model_.minDuration(t);
            for (size_t m = 0; m < task.modes.size(); ++m) {
                const Mode &mode = task.modes[m];
                Time start = profile.earliestStart(mode, est);
                if (start < 0)
                    continue;
                Time complete = start + mode.duration;
                if (complete + tail_after >= ub_)
                    continue; // Cannot beat the incumbent.
                options[num_options++] =
                    {static_cast<int>(m), start, complete};
            }
            std::sort(options, options + num_options,
                      [](const Option &a, const Option &b) {
                          return a.complete < b.complete;
                      });

            for (size_t oi = 0; oi < num_options; ++oi) {
                const Option &opt = options[oi];
                const Mode &mode = task.modes[opt.mode];
                // Apply: the engine updates the profile, every
                // propagator's incremental state, and the trail.
                engine_.place(t, mode, opt.start);
                assign_[t] = {opt.mode, opt.start};
                end_[t] = opt.complete;
                hash_ ^= nogoodCode(t, opt.mode, opt.start);
                ++scheduled_;
                size_t eligible_size = eligible_.size();
                removeEligible(t);
                for (int s : model_.successors(t))
                    if (--remainingPreds_[s] == 0)
                        addEligible(s);

                dfs(std::max(makespan, opt.complete));

                // Undo.
                for (int s : model_.successors(t))
                    if (remainingPreds_[s]++ == 0)
                        removeEligible(s);
                addEligible(t);
                hilp_assert(eligible_.size() == eligible_size);
                --scheduled_;
                hash_ ^= nogoodCode(t, opt.mode, opt.start);
                assign_[t] = Assignment{};
                end_[t] = 0;
                engine_.undo();

                if (stop_ || limitHit_)
                    return;
                // Re-check the prune: the incumbent may have improved.
                if (opt.complete + tail_after >= ub_)
                    break; // Options are completion-sorted.
            }
        }
        // Fully explored (budget stops return early above): every
        // completion of this placement set was enumerated or pruned
        // against an incumbent >= the current one, and the incumbent
        // only decreases, so "completions >= ub_" holds forever.
        if (nogoods_ && scheduled_ > 0) {
            nogoods_->record(hash_, ub_, scheduled_);
            ++result_.nogoodsRecorded;
        }
        ++result_.backtracks;
    }

    /** One feasible (mode, start) branch choice for a task. */
    struct Option
    {
        int mode;
        Time start;
        Time complete;
    };

    /** Legacy-layout per-depth scratch (preallocated in the ctor). */
    struct Frame
    {
        std::vector<int> tasks;
        std::vector<Option> options;
    };

    const Model &model_;
    const SearchLimits &limits_;
    PropagationEngine engine_;
    const bool packed_;
    CriticalPathData cp_;
    Clock::time_point startTime_;

    /**
     * Packed-layout per-node scratch: every dfs() call opens a Scope
     * and the whole node's scratch releases as one pointer rewind,
     * including on the early-exit paths.
     */
    support::Arena nodeArena_;
    std::vector<Frame> frames_;

    std::vector<Assignment> assign_;
    std::vector<Time> end_;
    /** Earliest-start scratch shared with the propagators. */
    std::vector<Time> est_;
    std::vector<int> remainingPreds_;
    std::vector<int> eligible_;
    /** Position of each task inside eligible_, or -1 when absent. */
    std::vector<int> eligiblePos_;
    int scheduled_ = 0;

    /** Zobrist key of the current placement set (see nogood.hh). */
    uint64_t hash_ = 0;
    std::unique_ptr<NogoodStore> nogoods_;

    Time ub_ = 0;
    bool stop_ = false;
    bool limitHit_ = false;
    SearchResult result_;
};

} // anonymous namespace

SearchResult
branchAndBound(const Model &model, const ScheduleVec *warm_start,
               const SearchLimits &limits)
{
    // threads <= 1 keeps the historical serial searcher, bit for
    // bit: identical node counts, identical incumbent sequence.
    if (limits.threads <= 1) {
        Searcher searcher(model, warm_start, limits);
        return searcher.run();
    }
    return parallelBranchAndBound(model, warm_start, limits);
}

} // namespace cp
} // namespace hilp
