/**
 * @file
 * Parameterized property sweep of the scaling model over all ten
 * Table II benchmarks: invariants every benchmark's curves must
 * satisfy regardless of its fitted exponents.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/dvfs.hh"
#include "workload/rodinia.hh"
#include "workload/scaling.hh"

namespace hilp {
namespace workload {
namespace {

class ScalingSweep : public ::testing::TestWithParam<int>
{
  protected:
    PhaseProfile
    compute() const
    {
        return makeRodiniaApp(GetParam(), 1.0).phases[1];
    }
};

TEST_P(ScalingSweep, FullGpuTimeMatchesTableIi)
{
    const auto &bench = rodiniaBenchmarks()[GetParam()];
    EXPECT_NEAR(acceleratorTimeS(compute(), kProfileSms,
                                 arch::kBaseClockMhz),
                bench.computeGpuS, 1e-9);
}

TEST_P(ScalingSweep, BaseBandwidthMatchesTableIi)
{
    const auto &bench = rodiniaBenchmarks()[GetParam()];
    EXPECT_NEAR(acceleratorBwGBs(compute(), kBwBaseSms,
                                 arch::kBaseClockMhz),
                bench.gpuBwGBs, 1e-9);
}

TEST_P(ScalingSweep, TimeNeverIncreasesWithUnits)
{
    PhaseProfile phase = compute();
    double prev = 1e300;
    for (int units : {1, 2, 4, 8, 16, 32, 64, 98, 128, 256}) {
        double t = acceleratorTimeS(phase, units,
                                    arch::kBaseClockMhz);
        // MC's published exponent is +9e-6: allow a hair of slack.
        EXPECT_LE(t, prev * 1.001)
            << rodiniaBenchmarks()[GetParam()].abbrev << " at "
            << units;
        prev = t;
    }
}

TEST_P(ScalingSweep, TimeNeverIncreasesWithClock)
{
    PhaseProfile phase = compute();
    double prev = 1e300;
    for (const auto &point : arch::gpuOperatingPoints()) {
        double t = acceleratorTimeS(phase, 32, point.clockMhz);
        EXPECT_LE(t, prev + 1e-12);
        prev = t;
    }
}

TEST_P(ScalingSweep, BytesAreClockInvariant)
{
    PhaseProfile phase = compute();
    double reference = acceleratorTimeS(phase, 64, 765) *
                       acceleratorBwGBs(phase, 64, 765);
    for (const auto &point : arch::gpuOperatingPoints()) {
        double bytes = acceleratorTimeS(phase, 64, point.clockMhz) *
                       acceleratorBwGBs(phase, 64, point.clockMhz);
        EXPECT_NEAR(bytes, reference, 1e-6 * reference);
    }
}

TEST_P(ScalingSweep, CpuSingleCoreMatchesTableIi)
{
    const auto &bench = rodiniaBenchmarks()[GetParam()];
    EXPECT_NEAR(cpuTimeS(compute(), 1), bench.computeCpuS, 1e-9);
}

TEST_P(ScalingSweep, CpuScalingIsMonotoneAndSubLinear)
{
    PhaseProfile phase = compute();
    double prev = 1e300;
    for (int cores : {1, 2, 4, 8, 16, 32}) {
        double t = cpuTimeS(phase, cores);
        EXPECT_LE(t, prev * 1.001);
        // Never super-linear: t(k) >= t(1) / k.
        EXPECT_GE(t * 1.001, cpuTimeS(phase, 1) / cores);
        prev = t;
    }
}

TEST_P(ScalingSweep, GammaWithinClampRange)
{
    PhaseProfile phase = compute();
    EXPECT_GE(phase.freqGamma, 0.2);
    EXPECT_LE(phase.freqGamma, 1.0);
}

TEST_P(ScalingSweep, CpuBandwidthIsPositiveAndFinite)
{
    PhaseProfile phase = compute();
    for (int cores : {1, 2, 4}) {
        double bw = cpuBwGBs(phase, cores);
        EXPECT_GE(bw, 1.0);
        EXPECT_TRUE(std::isfinite(bw));
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ScalingSweep,
                         ::testing::Range(0, 10));

} // anonymous namespace
} // namespace workload
} // namespace hilp
