#include "str.hh"

#include <algorithm>
#include <cctype>
#include <cstdarg>

#include "logging.hh"

namespace hilp {

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = detail::vformat(fmt, ap);
    va_end(ap);
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::string
fmtDouble(double v, int decimals)
{
    if (decimals <= 0)
        return format("%.0f", v);
    return format("%.*f", decimals, v);
}

} // namespace hilp
