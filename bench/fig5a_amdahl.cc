/**
 * @file
 * Figure 5a: reproducing Amdahl's law. Speedup versus CPU count
 * (1-8) for SoCs with 16/32/64-SM GPUs on the Default workload,
 * unconstrained, with each GPU's compute-limit asymptote (the dotted
 * lines of the figure). Expected shape: single-CPU SoCs are limited
 * by sequential setup/teardown; adding cores improves performance
 * until the GPU's compute limit saturates it.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "hilp/builder.hh"
#include "support/table.hh"
#include "workload/scaling.hh"

namespace {

using namespace hilp;

/** Speedup limit of a GPU: reference / serialized GPU compute. */
double
gpuComputeLimit(const workload::Workload &wl, int sms)
{
    double gpu_load = 0.0;
    for (const auto &app : wl.apps)
        for (const auto &phase : app.phases)
            if (phase.kind == workload::PhaseKind::Compute)
                gpu_load += workload::acceleratorTimeS(phase, sms, 765);
    return workload::sequentialCpuTimeS(wl) / gpu_load;
}

void
emitFigure()
{
    bench::banner(
        "Figure 5a - reproducing Amdahl's law",
        "Default workload, no power/bandwidth constraints. Speedup\n"
        "vs. 1-CPU sequential execution as CPU cores are added to\n"
        "SoCs with 16/32/64-SM GPUs. Dotted lines = GPU compute\n"
        "limit. Expected: growth, then saturation at the GPU limit.");

    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::Constraints constraints; // 600 W / 800 GB/s: non-binding.
    dse::DseOptions options = bench::explorationOptions(1.0);

    const std::vector<int> cpu_counts = {1, 2, 3, 4, 5, 6, 8};
    const std::vector<int> gpus = {16, 32, 64};

    Table table({"CPUs", "16-SM GPU", "32-SM GPU", "64-SM GPU"});
    for (int cpus : cpu_counts) {
        RowBuilder row;
        row.cell(static_cast<int64_t>(cpus));
        for (int sms : gpus) {
            arch::SocConfig soc;
            soc.cpuCores = cpus;
            soc.gpuSms = sms;
            dse::DsePoint point = dse::evaluatePoint(
                soc, wl, constraints, dse::ModelKind::Hilp, options);
            row.cell(point.ok ? point.speedup : 0.0, 2);
        }
        table.addRow(row.take());
    }
    table.print();

    bench::section("GPU compute limits (dotted lines)");
    Table limits({"GPU", "max speedup"});
    for (int sms : gpus) {
        limits.addRow(RowBuilder()
                          .cell(static_cast<int64_t>(sms))
                          .cell(gpuComputeLimit(wl, sms), 2)
                          .take());
    }
    limits.print();
}

void
BM_EvaluateAmdahlPoint(benchmark::State &state)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 32;
    dse::DseOptions options = bench::explorationOptions(1.0);
    for (auto _ : state) {
        dse::DsePoint point =
            dse::evaluatePoint(soc, wl, arch::Constraints{},
                               dse::ModelKind::Hilp, options);
        benchmark::DoNotOptimize(point.speedup);
    }
}
BENCHMARK(BM_EvaluateAmdahlPoint)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
