/**
 * @file
 * Differential tests for the work-stealing parallel branch-and-bound
 * against the serial searcher. With targetGap == 0 both must prove
 * the same optimum (or the same infeasibility): the parallel search
 * explores a different node set, but the set of schedules covered is
 * identical, so foundSolution / exhausted / bestMakespan must match
 * exactly for every thread count and both parallel modes.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "cp/list_scheduler.hh"
#include "cp/model.hh"
#include "cp/search.hh"
#include "support/random.hh"

namespace hilp {
namespace cp {
namespace {

/**
 * A random multi-mode scheduling instance: a few device groups and
 * cumulative resources, tasks with 1-3 modes, a sparse precedence
 * DAG (edges only i -> j with i < j), occasional start lags. The
 * horizon is tight enough that some seeds are infeasible, so the
 * differential also covers exhaustion without a solution.
 */
Model
randomModel(uint64_t seed)
{
    Rng rng(seed * 9176 + 31);
    Model m;
    m.addResource(rng.uniformDouble(1.0, 2.5), "r0");
    if (rng.chance(0.5))
        m.addResource(rng.uniformDouble(0.5, 1.5), "r1");
    int groups = static_cast<int>(rng.uniformInt(2, 3));
    std::vector<int> gids;
    for (int g = 0; g < groups; ++g)
        gids.push_back(m.addGroup());

    int n = static_cast<int>(rng.uniformInt(6, 8));
    Time total = 0;
    for (int t = 0; t < n; ++t) {
        Task task;
        int num_modes = static_cast<int>(rng.uniformInt(1, 3));
        Time longest = 0;
        for (int k = 0; k < num_modes; ++k) {
            Mode mode;
            mode.group = rng.chance(0.8)
                ? gids[static_cast<size_t>(
                      rng.uniformInt(0, groups - 1))]
                : kNoGroup;
            mode.duration = static_cast<Time>(rng.uniformInt(1, 5));
            mode.usage.push_back(rng.uniformDouble(0.0, 1.2));
            if (m.numResources() > 1)
                mode.usage.push_back(rng.uniformDouble(0.0, 0.9));
            longest = std::max(longest, mode.duration);
            task.modes.push_back(mode);
        }
        total += longest;
        m.addTask(task);
    }
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (rng.chance(0.25)) {
                if (rng.chance(0.15))
                    m.addStartLag(i, j,
                                  static_cast<Time>(
                                      rng.uniformInt(1, 3)));
                else
                    m.addPrecedence(i, j);
            }
    // Tight enough to make some seeds infeasible, loose enough that
    // most have schedules.
    m.setHorizon(std::max<Time>(8, total * 2 / 3));
    return m;
}

SearchLimits
exhaustiveLimits()
{
    SearchLimits limits;
    limits.targetGap = 0.0;
    limits.maxNodes = 50'000'000;
    limits.maxSeconds = 120.0;
    return limits;
}

class ParallelDiff : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ParallelDiff, MatchesSerialOptimum)
{
    Model m = randomModel(GetParam());
    SearchResult serial = branchAndBound(m, nullptr,
                                         exhaustiveLimits());
    ASSERT_TRUE(serial.exhausted)
        << "reference run must prove optimality";

    for (int threads : {2, 4, 8}) {
        for (bool deterministic : {false, true}) {
            SearchLimits limits = exhaustiveLimits();
            limits.threads = threads;
            limits.deterministic = deterministic;
            SearchResult par = branchAndBound(m, nullptr, limits);
            SCOPED_TRACE(::testing::Message()
                         << "threads=" << threads
                         << " deterministic=" << deterministic);
            EXPECT_EQ(par.threadsUsed, threads);
            EXPECT_EQ(par.foundSolution, serial.foundSolution);
            EXPECT_EQ(par.exhausted, serial.exhausted);
            if (serial.foundSolution) {
                EXPECT_EQ(par.bestMakespan, serial.bestMakespan);
                EXPECT_EQ(checkSchedule(m, par.best), "");
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDiff,
                         ::testing::Range<uint64_t>(1, 13));

class ParallelWarmDiff : public ::testing::TestWithParam<uint64_t>
{};

/** Warm-started runs must also land on the serial optimum. */
TEST_P(ParallelWarmDiff, MatchesSerialOptimumFromWarmStart)
{
    Model m = randomModel(GetParam());
    SearchResult serial = branchAndBound(m, nullptr,
                                         exhaustiveLimits());
    if (!serial.foundSolution)
        GTEST_SKIP() << "infeasible seed has no warm start";
    ASSERT_TRUE(serial.exhausted);
    ScheduleVec warm = serial.best;

    for (int threads : {2, 8}) {
        for (bool deterministic : {false, true}) {
            SearchLimits limits = exhaustiveLimits();
            limits.threads = threads;
            limits.deterministic = deterministic;
            SearchResult par = branchAndBound(m, &warm, limits);
            SCOPED_TRACE(::testing::Message()
                         << "threads=" << threads
                         << " deterministic=" << deterministic);
            ASSERT_TRUE(par.foundSolution);
            EXPECT_TRUE(par.exhausted);
            EXPECT_EQ(par.bestMakespan, serial.bestMakespan);
            // The warm start is already optimal: no improvements.
            EXPECT_EQ(par.solutions, 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelWarmDiff,
                         ::testing::Range<uint64_t>(1, 7));

Model
twoDeviceModel()
{
    // Four tasks, each 2 steps on either of two devices: optimum 4.
    Model m;
    int g1 = m.addGroup("A");
    int g2 = m.addGroup("B");
    for (int i = 0; i < 4; ++i) {
        Task t;
        t.modes.push_back({g1, 2, {}});
        t.modes.push_back({g2, 2, {}});
        m.addTask(t);
    }
    m.setHorizon(20);
    return m;
}

TEST(ParallelSearch, FindsOptimumOnAllThreadCounts)
{
    Model m = twoDeviceModel();
    for (int threads : {2, 3, 4, 8}) {
        SearchLimits limits;
        limits.threads = threads;
        SearchResult r = branchAndBound(m, nullptr, limits);
        SCOPED_TRACE(threads);
        ASSERT_TRUE(r.foundSolution);
        EXPECT_TRUE(r.exhausted);
        EXPECT_EQ(r.bestMakespan, 4);
        EXPECT_EQ(checkSchedule(m, r.best), "");
    }
}

TEST(ParallelSearch, ProvesInfeasibilityByExhaustion)
{
    Model m;
    int g = m.addGroup("G");
    for (int i = 0; i < 3; ++i) {
        Task t;
        t.modes.push_back({g, 3, {}});
        m.addTask(t);
    }
    m.setHorizon(8); // needs 9 steps on one device.
    for (bool deterministic : {false, true}) {
        SearchLimits limits;
        limits.threads = 4;
        limits.deterministic = deterministic;
        SearchResult r = branchAndBound(m, nullptr, limits);
        SCOPED_TRACE(deterministic);
        EXPECT_FALSE(r.foundSolution);
        EXPECT_TRUE(r.exhausted);
    }
}

TEST(ParallelSearch, TargetGapSkipsSearchLikeSerial)
{
    Model m = twoDeviceModel();
    ScheduleVec warm;
    warm.tasks = {{0, 0}, {1, 0}, {0, 2}, {1, 2}};
    SearchLimits limits;
    limits.threads = 4;
    limits.targetGap = 0.5;
    limits.lowerBound = 3; // gap (4-3)/4 = 0.25 <= 0.5.
    SearchResult r = branchAndBound(m, &warm, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_FALSE(r.exhausted);
    EXPECT_EQ(r.nodes, 0);
    EXPECT_EQ(r.bestMakespan, 4);
}

TEST(ParallelSearch, DeterministicModeIsReproducible)
{
    Model m = randomModel(3);
    SearchLimits limits = exhaustiveLimits();
    limits.threads = 4;
    limits.deterministic = true;
    SearchResult first = branchAndBound(m, nullptr, limits);
    for (int run = 0; run < 3; ++run) {
        SearchResult again = branchAndBound(m, nullptr, limits);
        EXPECT_EQ(again.foundSolution, first.foundSolution);
        EXPECT_EQ(again.exhausted, first.exhausted);
        EXPECT_EQ(again.bestMakespan, first.bestMakespan);
        EXPECT_EQ(again.nodes, first.nodes);
        EXPECT_EQ(again.solutions, first.solutions);
        EXPECT_EQ(again.subproblems, first.subproblems);
        if (first.foundSolution) {
            ASSERT_EQ(again.best.tasks.size(),
                      first.best.tasks.size());
            for (size_t t = 0; t < first.best.tasks.size(); ++t) {
                EXPECT_EQ(again.best.tasks[t].mode,
                          first.best.tasks[t].mode);
                EXPECT_EQ(again.best.tasks[t].start,
                          first.best.tasks[t].start);
            }
        }
    }
}

TEST(ParallelSearch, ExplicitSplitDepthIsHonored)
{
    Model m = randomModel(5);
    SearchResult serial = branchAndBound(m, nullptr,
                                         exhaustiveLimits());
    for (int depth : {1, 2, 6}) {
        SearchLimits limits = exhaustiveLimits();
        limits.threads = 4;
        limits.splitDepth = depth;
        SearchResult r = branchAndBound(m, nullptr, limits);
        SCOPED_TRACE(depth);
        EXPECT_EQ(r.foundSolution, serial.foundSolution);
        EXPECT_EQ(r.exhausted, serial.exhausted);
        if (serial.foundSolution) {
            EXPECT_EQ(r.bestMakespan, serial.bestMakespan);
        }
    }
}

TEST(ParallelSearch, ReportsWorkDistributionTelemetry)
{
    Model m = randomModel(2);
    SearchLimits limits = exhaustiveLimits();
    limits.threads = 4;
    SearchResult r = branchAndBound(m, nullptr, limits);
    EXPECT_EQ(r.threadsUsed, 4);
    // The root split alone publishes subproblems on any instance
    // with more than one feasible first decision.
    EXPECT_GT(r.subproblems, 0);
    EXPECT_GT(r.nodes, 0);
    // Propagator stats aggregate across workers: the engine rules
    // are registered once per name, with summed counters.
    ASSERT_FALSE(r.propagators.empty());
    for (size_t i = 0; i < r.propagators.size(); ++i)
        for (size_t j = i + 1; j < r.propagators.size(); ++j)
            EXPECT_NE(r.propagators[i].name, r.propagators[j].name);
}

/**
 * Termination-protocol stress: on tiny trees with many workers,
 * almost all of a run is spent at the claim/exhaustion boundary —
 * the last few subproblems are claimed while the rest of the crew
 * races the pending == 0 check. Any protocol that can declare
 * exhaustion while a claimed subtree is still unexplored shows up
 * here as a wrong makespan or a missed solution with
 * exhausted == true. Repetition widens the interleaving coverage.
 */
TEST(ParallelSearch, TerminationStressOnTinyTrees)
{
    Model feasible = twoDeviceModel();
    Model infeasible;
    int g = infeasible.addGroup("G");
    for (int i = 0; i < 3; ++i) {
        Task t;
        t.modes.push_back({g, 3, {}});
        infeasible.addTask(t);
    }
    infeasible.setHorizon(8);

    for (int rep = 0; rep < 200; ++rep) {
        SearchLimits limits;
        limits.threads = 8;
        SearchResult r = branchAndBound(feasible, nullptr, limits);
        SCOPED_TRACE(rep);
        ASSERT_TRUE(r.foundSolution);
        ASSERT_TRUE(r.exhausted);
        ASSERT_EQ(r.bestMakespan, 4);

        SearchResult inf =
            branchAndBound(infeasible, nullptr, limits);
        ASSERT_FALSE(inf.foundSolution);
        ASSERT_TRUE(inf.exhausted);
    }
}

/**
 * No-good differential under concurrency: the shared store (and the
 * private per-worker stores of deterministic mode) must not change
 * any proven optimum or exhaustion verdict at any thread count. A
 * racy publication or an unsound shared bound shows up here - and
 * under TSan, which runs this binary - as a wrong makespan.
 */
class NogoodParallelDiff : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(NogoodParallelDiff, MatchesSerialOptimumWithSharedStore)
{
    Model m = randomModel(GetParam() * 37 + 7);
    SearchResult serial = branchAndBound(m, nullptr,
                                         exhaustiveLimits());
    ASSERT_TRUE(serial.exhausted);

    for (int threads : {2, 8}) {
        for (bool deterministic : {false, true}) {
            SearchLimits limits = exhaustiveLimits();
            limits.threads = threads;
            limits.deterministic = deterministic;
            limits.useNogoods = true;
            SearchResult par = branchAndBound(m, nullptr, limits);
            SCOPED_TRACE(::testing::Message()
                         << "threads=" << threads
                         << " deterministic=" << deterministic);
            EXPECT_EQ(par.foundSolution, serial.foundSolution);
            EXPECT_EQ(par.exhausted, serial.exhausted);
            if (serial.foundSolution) {
                EXPECT_EQ(par.bestMakespan, serial.bestMakespan);
                EXPECT_EQ(checkSchedule(m, par.best), "");
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NogoodParallelDiff,
                         ::testing::Range<uint64_t>(1, 9));

TEST(ParallelSearch, DeterministicModeWithNogoodsIsReproducible)
{
    // Deterministic mode keeps its reproducibility promise with
    // learning on: stores are private per worker, so node counts and
    // no-good telemetry must repeat exactly.
    Model m = randomModel(3);
    SearchLimits limits = exhaustiveLimits();
    limits.threads = 4;
    limits.deterministic = true;
    limits.useNogoods = true;
    SearchResult first = branchAndBound(m, nullptr, limits);
    for (int run = 0; run < 3; ++run) {
        SearchResult again = branchAndBound(m, nullptr, limits);
        EXPECT_EQ(again.foundSolution, first.foundSolution);
        EXPECT_EQ(again.exhausted, first.exhausted);
        EXPECT_EQ(again.bestMakespan, first.bestMakespan);
        EXPECT_EQ(again.nodes, first.nodes);
        EXPECT_EQ(again.nogoodHits, first.nogoodHits);
        EXPECT_EQ(again.nogoodsRecorded, first.nogoodsRecorded);
    }
}

/** A big contended instance no 8-worker run finishes in 100 ms. */
Model
hardModel(int tasks, uint64_t seed)
{
    Model m;
    m.addResource(4.0, "power");
    int g0 = m.addGroup("G0");
    int g1 = m.addGroup("G1");
    Rng rng(seed);
    for (int i = 0; i < tasks; ++i) {
        Task t;
        t.name = "t" + std::to_string(i);
        t.modes.push_back({kNoGroup,
                           static_cast<Time>(rng.uniformInt(3, 6)),
                           {1.0}});
        t.modes.push_back({rng.chance(0.5) ? g0 : g1,
                           static_cast<Time>(rng.uniformInt(1, 3)),
                           {2.0}});
        m.addTask(t);
        if (i > 0 && rng.chance(0.4))
            m.addPrecedence(static_cast<int>(rng.uniformInt(0, i - 1)),
                            i);
    }
    m.setHorizon(200);
    return m;
}

/**
 * Mid-flight deadline-cut stress (the satellite bugfix): with eight
 * workers deep in a large tree, an expiring deadline must cut every
 * loop - subtree walks, the steal/backoff wait, and deterministic
 * mode's between-subproblem boundary - promptly, and the run must
 * still publish the best cross-worker incumbent. Before the fix,
 * workers parked in waitForWork spun past the deadline and runs
 * could hang until maxSeconds.
 */
TEST(ParallelSearch, DeadlineCutsEightWorkerSearchMidFlight)
{
    using Clock = std::chrono::steady_clock;
    Model m = hardModel(18, 4242);
    ListResult greedy = bestGreedy(m, 4, 1);
    ASSERT_TRUE(greedy.feasible);

    for (bool deterministic : {false, true}) {
        SCOPED_TRACE(deterministic);
        SearchLimits limits;
        limits.threads = 8;
        limits.maxNodes = 1'000'000'000;
        limits.maxSeconds = 120.0;
        limits.deadline = Clock::now() +
                          std::chrono::milliseconds(100);
        limits.deterministic = deterministic;
        Clock::time_point t0 = Clock::now();
        SearchResult r = branchAndBound(m, &greedy.schedule, limits);
        double elapsed = std::chrono::duration<double>(
            Clock::now() - t0).count();
        // Generous margin over the 100 ms budget: the cut only has
        // to beat the 120 s fallback, not be instant, but anything
        // past a few seconds means some loop ignored the deadline.
        EXPECT_LT(elapsed, 10.0);
        ASSERT_TRUE(r.foundSolution);
        EXPECT_LE(r.bestMakespan, greedy.makespan);
        EXPECT_EQ(checkSchedule(m, r.best), "");
    }
}

TEST(ParallelSearch, AlreadyExpiredDeadlineStillReturnsIncumbent)
{
    using Clock = std::chrono::steady_clock;
    Model m = hardModel(14, 99);
    ListResult greedy = bestGreedy(m, 4, 1);
    ASSERT_TRUE(greedy.feasible);

    for (bool deterministic : {false, true}) {
        SCOPED_TRACE(deterministic);
        SearchLimits limits;
        limits.threads = 8;
        limits.deadline = Clock::now();
        limits.deterministic = deterministic;
        Clock::time_point t0 = Clock::now();
        SearchResult r = branchAndBound(m, &greedy.schedule, limits);
        double elapsed = std::chrono::duration<double>(
            Clock::now() - t0).count();
        EXPECT_LT(elapsed, 10.0);
        ASSERT_TRUE(r.foundSolution);
        EXPECT_FALSE(r.exhausted);
        EXPECT_LE(r.bestMakespan, greedy.makespan);
        EXPECT_EQ(checkSchedule(m, r.best), "");
    }
}

TEST(ParallelSearch, SerialPathIgnoresParallelKnobs)
{
    // threads == 1 must route to the serial searcher no matter what
    // the parallel-only knobs say.
    Model m = twoDeviceModel();
    SearchLimits limits;
    limits.threads = 1;
    limits.deterministic = true;
    limits.splitDepth = 3;
    SearchResult r = branchAndBound(m, nullptr, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.bestMakespan, 4);
    EXPECT_EQ(r.threadsUsed, 1);
    EXPECT_EQ(r.steals, 0);
    EXPECT_EQ(r.subproblems, 0);
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
