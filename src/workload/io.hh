/**
 * @file
 * Workload import/export.
 *
 * HILP users bring their own profiled workloads (the paper's Tables
 * are one instance of such a profile). This module defines a simple
 * CSV interchange format - one row per phase - with exact
 * round-tripping, so profiles produced by external tooling (perf,
 * Nsight, spreadsheets) can be loaded without recompiling.
 *
 * Columns:
 *   app, phase, kind, cpu_time1_s, gpu_compatible, gpu_time98_s,
 *   gpu_bw_base_gbs, time_a, time_b, bw_a, bw_b, freq_gamma,
 *   dsa_target
 * with kind in {sequential, compute} and booleans as 0/1.
 */

#ifndef HILP_WORKLOAD_IO_HH
#define HILP_WORKLOAD_IO_HH

#include <string>

#include "workload.hh"

namespace hilp {
namespace workload {

/** Serialize a workload (header row first). */
std::string workloadToCsv(const Workload &workload);

/** Outcome of parsing a workload CSV. */
struct ParseResult
{
    bool ok = false;
    std::string error;  //!< First problem found (empty when ok).
    Workload workload;
};

/**
 * Parse the CSV format written by workloadToCsv. Apps are created in
 * first-appearance order; phases append in row order and form the
 * default chain (custom dependency graphs are code-level features).
 * Parsing is strict: wrong column counts, unknown kinds, or
 * non-numeric fields fail with a line-numbered error.
 */
ParseResult workloadFromCsv(const std::string &text,
                            const std::string &name = "imported");

} // namespace workload
} // namespace hilp

#endif // HILP_WORKLOAD_IO_HH
