/** @file Unit tests for the Rodinia profiles and workload factories. */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/rodinia.hh"
#include "workload/workload.hh"

namespace hilp {
namespace workload {
namespace {

TEST(Rodinia, TableIiHasTenBenchmarks)
{
    EXPECT_EQ(rodiniaBenchmarks().size(), 10u);
}

TEST(Rodinia, SpotCheckTableIiValues)
{
    const auto &hs = rodiniaBenchmarks()[rodiniaIndex("HS")];
    EXPECT_DOUBLE_EQ(hs.setupS, 80.8);
    EXPECT_DOUBLE_EQ(hs.computeCpuS, 395.9);
    EXPECT_DOUBLE_EQ(hs.computeGpuS, 20.5);
    EXPECT_DOUBLE_EQ(hs.teardownS, 71.3);
    EXPECT_DOUBLE_EQ(hs.gpuBwGBs, 40.4);
    EXPECT_DOUBLE_EQ(hs.timeLaw.a, 13.93);
    EXPECT_DOUBLE_EQ(hs.timeLaw.b, -1.00);

    const auto &nn = rodiniaBenchmarks()[rodiniaIndex("NN")];
    EXPECT_DOUBLE_EQ(nn.computeGpuS, 3.8e-3);
    EXPECT_DOUBLE_EQ(nn.gpuBwGBs, 187.6);
}

TEST(Rodinia, PublishedFitsAreSelfConsistent)
{
    // The paper normalizes its power laws to the 14-SM GPU, so
    // a ~= 14^-b must hold for every well-fitted law (r2 near 1).
    for (const auto &bench : rodiniaBenchmarks()) {
        if (bench.timeLaw.r2 < 0.9)
            continue; // MC's flat profile is fit to noise.
        double expected_a = std::pow(14.0, -bench.timeLaw.b);
        EXPECT_NEAR(bench.timeLaw.a, expected_a,
                    0.05 * expected_a + 0.3)
            << bench.abbrev;
    }
}

TEST(Rodinia, IndexLookup)
{
    EXPECT_EQ(rodiniaIndex("BFS"), 0);
    EXPECT_EQ(rodiniaIndex("SC"), 9);
}

TEST(Rodinia, VariantDivisors)
{
    EXPECT_DOUBLE_EQ(variantDivisor(Variant::Rodinia), 1.0);
    EXPECT_DOUBLE_EQ(variantDivisor(Variant::Default), 5.0);
    EXPECT_DOUBLE_EQ(variantDivisor(Variant::Optimized), 20.0);
}

TEST(Rodinia, VariantNames)
{
    EXPECT_STREQ(toString(Variant::Rodinia), "Rodinia");
    EXPECT_STREQ(toString(Variant::Default), "Default");
    EXPECT_STREQ(toString(Variant::Optimized), "Optimized");
}

TEST(Rodinia, AppStructureIsSetupComputeTeardown)
{
    Application app = makeRodiniaApp(rodiniaIndex("LUD"), 1.0);
    ASSERT_EQ(app.phases.size(), 3u);
    EXPECT_EQ(app.phases[0].kind, PhaseKind::Sequential);
    EXPECT_EQ(app.phases[1].kind, PhaseKind::Compute);
    EXPECT_EQ(app.phases[2].kind, PhaseKind::Sequential);
    EXPECT_TRUE(app.isChain());
    EXPECT_EQ(app.phases[1].dsaTarget, rodiniaIndex("LUD"));
    EXPECT_TRUE(app.phases[1].gpuCompatible);
    EXPECT_FALSE(app.phases[0].gpuCompatible);
}

TEST(Rodinia, DivisorScalesOnlySetupAndTeardown)
{
    Application full = makeRodiniaApp(rodiniaIndex("HS"), 1.0);
    Application fifth = makeRodiniaApp(rodiniaIndex("HS"), 5.0);
    EXPECT_DOUBLE_EQ(fifth.phases[0].cpuTime1,
                     full.phases[0].cpuTime1 / 5.0);
    EXPECT_DOUBLE_EQ(fifth.phases[2].cpuTime1,
                     full.phases[2].cpuTime1 / 5.0);
    EXPECT_DOUBLE_EQ(fifth.phases[1].cpuTime1,
                     full.phases[1].cpuTime1);
}

TEST(Rodinia, WorkloadContainsAllBenchmarks)
{
    Workload w = makeWorkload(Variant::Default);
    EXPECT_EQ(w.apps.size(), 10u);
    EXPECT_EQ(w.numPhases(), 30);
    EXPECT_EQ(w.name, "Default");
}

TEST(Rodinia, SequentialReferenceTimes)
{
    // Section V reference: fully sequential on one CPU core. The
    // Rodinia variant sums the raw Table II columns.
    Workload rodinia = makeWorkload(Variant::Rodinia);
    EXPECT_NEAR(sequentialCpuTimeS(rodinia), 1941.4, 1.0);
    Workload optimized = makeWorkload(Variant::Optimized);
    EXPECT_NEAR(sequentialCpuTimeS(optimized), 1574.3, 1.0);
}

TEST(Rodinia, DsaPriorityStartsWithLudAndHs)
{
    // Section VI: "the DSA in a 1-DSA SoC accelerates LUD, the DSAs
    // in a 2-DSA SoC accelerate LUD and HS, and so on."
    std::vector<int> order = dsaPriorityOrder();
    ASSERT_EQ(order.size(), 10u);
    EXPECT_EQ(order[0], rodiniaIndex("LUD"));
    EXPECT_EQ(order[1], rodiniaIndex("HS"));
    // Descending CPU compute time throughout.
    const auto &benchmarks = rodiniaBenchmarks();
    for (size_t i = 1; i < order.size(); ++i) {
        EXPECT_GE(benchmarks[order[i - 1]].computeCpuS,
                  benchmarks[order[i]].computeCpuS);
    }
}


TEST(Rodinia, MultiCopyWorkloads)
{
    Workload two = makeWorkload(Variant::Default, 2);
    EXPECT_EQ(two.apps.size(), 20u);
    EXPECT_EQ(two.numPhases(), 60);
    EXPECT_EQ(two.name, "Defaultx2");
    // Copies are independent apps with distinct names but identical
    // profiles and DSA targets.
    EXPECT_EQ(two.apps[0].name, "BFS");
    EXPECT_EQ(two.apps[10].name, "BFS#1");
    EXPECT_DOUBLE_EQ(two.apps[10].phases[1].cpuTime1,
                     two.apps[0].phases[1].cpuTime1);
    EXPECT_EQ(two.apps[10].phases[1].dsaTarget,
              two.apps[0].phases[1].dsaTarget);
    // The sequential reference scales linearly with copies.
    Workload one = makeWorkload(Variant::Default, 1);
    EXPECT_NEAR(sequentialCpuTimeS(two),
                2.0 * sequentialCpuTimeS(one), 1e-9);
}

} // anonymous namespace
} // namespace workload
} // namespace hilp
