/**
 * @file
 * Example: power budgeting a fixed SoC (the dark-silicon use case).
 *
 * Takes one SoC - four CPU cores and a 64-SM GPU - and asks HILP how
 * the Optimized Rodinia workload degrades as the chip's power budget
 * shrinks, and which DVFS operating points the near-optimal
 * schedules select. This is Section V's dark-silicon experiment
 * turned into a "what budget does my chip need?" workflow.
 *
 * Run: ./build/examples/power_budgeting
 */

#include <cstdio>
#include <map>

#include "hilp/builder.hh"
#include "hilp/engine.hh"
#include "support/table.hh"
#include "workload/rodinia.hh"

using namespace hilp;

int
main()
{
    auto wl = workload::makeWorkload(workload::Variant::Optimized);
    double reference = workload::sequentialCpuTimeS(wl);

    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 64;

    EngineOptions options = EngineOptions::validationMode();
    options.solver.maxSeconds = 6.0;
    options.escalations = 1;

    std::printf("workload: %s (sequential reference %.0f s)\n",
                wl.name.c_str(), reference);
    std::printf("SoC: %s\n\n", soc.name().c_str());

    Table table({"p_max (W)", "makespan (s)", "speedup", "gap",
                 "top GPU clock used (MHz)"});
    for (double watts : {40.0, 50.0, 75.0, 100.0, 150.0, 600.0}) {
        arch::Constraints constraints;
        constraints.powerBudgetW = watts;
        ProblemSpec spec = buildProblem(wl, soc, constraints);
        if (!spec.validate().empty()) {
            std::printf("%5.0f W: workload unschedulable\n", watts);
            continue;
        }
        EvalResult result = evaluate(spec, options);
        if (!result.ok)
            continue;
        // Which operating points did the schedule actually use?
        int top_clock = 0;
        for (const ScheduledPhase &phase : result.schedule.phases) {
            auto at = phase.unitLabel.find('@');
            if (phase.unitLabel.rfind("GPU", 0) == 0 &&
                at != std::string::npos) {
                top_clock = std::max(
                    top_clock,
                    std::atoi(phase.unitLabel.c_str() + at + 1));
            }
        }
        table.addRow(RowBuilder()
                         .cell(watts, 0)
                         .cell(result.makespanS, 1)
                         .cell(reference / result.makespanS, 2)
                         .cell(result.gap, 3)
                         .cell(static_cast<int64_t>(top_clock))
                         .take());
    }
    table.print();

    std::printf("\nThe 50 W row shows the paper's dark-silicon "
                "anecdote: the budget\ncaps the 64-SM GPU's clock "
                "(48.6 W at 300 MHz) and the schedule\nserializes "
                "around it.\n");
    return 0;
}
