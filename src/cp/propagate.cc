#include "propagate.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "support/logging.hh"
#include "support/trace.hh"

namespace hilp {
namespace cp {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Timing every propagate() call would cost two clock reads per rule
 * per node; instead every kTimingSample-th invocation is timed and
 * extrapolated. Keep it a power of two.
 */
constexpr int64_t kTimingSample = 16;

/**
 * Sampling rate for per-rule trace spans when tracing is enabled: a
 * fixpoint runs per search node, so tracing every propagate() call
 * would saturate the trace buffers in milliseconds. One span per
 * kTraceSample invocations keeps the timeline representative while
 * a full solve stays within the per-thread event budget. Power of
 * two.
 */
constexpr int64_t kTraceSample = 1024;

/**
 * Timetable-cumulative reasoning: per resource, the energy already
 * committed plus the minimum energy every unscheduled task must still
 * commit, divided by capacity, bounds any completion's makespan.
 *
 * The accumulators deliberately stay in double precision with the
 * exact same update expressions the search historically used inline,
 * so the produced bounds are bit-identical to the pre-refactor code
 * (the trail replays additions and subtractions in reverse order, so
 * each accumulator sees the identical operation sequence).
 */
class TimetablePropagator final : public Propagator
{
  public:
    explicit TimetablePropagator(const Model &model)
    {
        const int n = model.numTasks();
        minEnergy_.assign(n, std::vector<double>(
            model.numResources(), 0.0));
        remainingEnergy_.assign(model.numResources(), 0.0);
        placedEnergy_.assign(model.numResources(), 0.0);
        for (int t = 0; t < n; ++t) {
            const Task &task = model.task(t);
            for (int r = 0; r < model.numResources(); ++r) {
                double min_e = -1.0;
                for (const Mode &mode : task.modes) {
                    double e = mode.usage[r] *
                        static_cast<double>(mode.duration);
                    if (min_e < 0.0 || e < min_e)
                        min_e = e;
                }
                minEnergy_[t][r] = std::max(0.0, min_e);
                remainingEnergy_[r] += minEnergy_[t][r];
            }
        }
    }

    const char *name() const override { return "timetable"; }

    void
    onPlace(int task, const Mode &mode, Time start) override
    {
        (void)start;
        for (size_t r = 0; r < remainingEnergy_.size(); ++r) {
            remainingEnergy_[r] -= minEnergy_[task][r];
            placedEnergy_[r] += mode.usage[r] *
                static_cast<double>(mode.duration);
        }
    }

    void
    onUnplace(int task, const Mode &mode, Time start) override
    {
        (void)start;
        for (size_t r = 0; r < remainingEnergy_.size(); ++r) {
            remainingEnergy_[r] += minEnergy_[task][r];
            placedEnergy_[r] -= mode.usage[r] *
                static_cast<double>(mode.duration);
        }
    }

    Outcome
    propagate(const PropagationContext &ctx) override
    {
        Outcome out;
        for (int r = 0; r < ctx.model.numResources(); ++r) {
            double cap = ctx.model.capacity(r);
            if (cap <= 0.0)
                continue;
            double energy = placedEnergy_[r] + remainingEnergy_[r];
            out.bound = std::max(out.bound, static_cast<Time>(
                std::ceil(energy / cap - 1e-9)));
        }
        return out;
    }

  private:
    std::vector<std::vector<double>> minEnergy_;
    std::vector<double> remainingEnergy_;
    std::vector<double> placedEnergy_;
};

/**
 * Disjunctive-group load: busy time already scheduled on each group
 * plus the minimum durations of unscheduled tasks whose every mode is
 * pinned to that group. Pure integer state.
 */
class DisjunctivePropagator final : public Propagator
{
  public:
    explicit DisjunctivePropagator(const Model &model)
        : model_(model)
    {
        const int n = model.numTasks();
        pinnedGroup_.assign(n, kNoGroup);
        groupBusy_.assign(model.numGroups(), 0);
        remainingPinned_.assign(model.numGroups(), 0);
        for (int t = 0; t < n; ++t) {
            const Task &task = model.task(t);
            int group = task.modes[0].group;
            bool pinned = group != kNoGroup;
            for (const Mode &mode : task.modes)
                pinned = pinned && mode.group == group;
            if (pinned) {
                pinnedGroup_[t] = group;
                remainingPinned_[group] += model.minDuration(t);
            }
        }
    }

    const char *name() const override { return "disjunctive"; }

    void
    onPlace(int task, const Mode &mode, Time start) override
    {
        (void)start;
        if (pinnedGroup_[task] != kNoGroup)
            remainingPinned_[pinnedGroup_[task]] -=
                model_.minDuration(task);
        if (mode.group != kNoGroup)
            groupBusy_[mode.group] += mode.duration;
    }

    void
    onUnplace(int task, const Mode &mode, Time start) override
    {
        (void)start;
        if (pinnedGroup_[task] != kNoGroup)
            remainingPinned_[pinnedGroup_[task]] +=
                model_.minDuration(task);
        if (mode.group != kNoGroup)
            groupBusy_[mode.group] -= mode.duration;
    }

    Outcome
    propagate(const PropagationContext &ctx) override
    {
        (void)ctx;
        Outcome out;
        for (size_t g = 0; g < groupBusy_.size(); ++g) {
            out.bound = std::max(out.bound, groupBusy_[g] +
                                 remainingPinned_[g]);
        }
        return out;
    }

  private:
    const Model &model_;
    std::vector<int> pinnedGroup_;
    std::vector<Time> groupBusy_;
    std::vector<Time> remainingPinned_;
};

/**
 * Precedence bounds: one topological pass recomputing each
 * unscheduled task's earliest start from scheduled finishes, the
 * earliest starts of unscheduled predecessors (computed earlier in
 * the same pass), and lag edges; est + tail bounds the makespan.
 * Publishes the earliest starts through the context for downstream
 * propagators.
 */
class PrecedencePropagator final : public Propagator
{
  public:
    explicit PrecedencePropagator(const Model &model)
        : topo_(model.topologicalOrder())
    {
        // Flatten the per-task predecessor and lag-edge lists into
        // CSR arrays and bake each predecessor's min duration next
        // to its index: this pass runs at every search node, and
        // chasing a vector-of-vectors there costs a cache miss per
        // task.
        const int n = model.numTasks();
        predOff_.reserve(static_cast<size_t>(n) + 1);
        lagOff_.reserve(static_cast<size_t>(n) + 1);
        predOff_.push_back(0);
        lagOff_.push_back(0);
        for (int t = 0; t < n; ++t) {
            for (int p : model.predecessors(t))
                preds_.push_back({p, model.minDuration(p)});
            predOff_.push_back(
                static_cast<int32_t>(preds_.size()));
            for (const Model::LagEdge &edge :
                 model.lagPredecessors(t))
                lags_.push_back({edge.other, edge.lag});
            lagOff_.push_back(static_cast<int32_t>(lags_.size()));
        }
    }

    const char *name() const override { return "precedence"; }

    void onPlace(int, const Mode &, Time) override {}
    void onUnplace(int, const Mode &, Time) override {}

    Outcome
    propagate(const PropagationContext &ctx) override
    {
        Outcome out;
        for (int t : topo_) {
            if (ctx.assign[t].scheduled())
                continue;
            Time est = ctx.cp.head[t];
            for (int32_t k = predOff_[t]; k < predOff_[t + 1]; ++k) {
                const Pred &pred = preds_[k];
                Time ready = ctx.assign[pred.task].scheduled()
                    ? ctx.end[pred.task]
                    : ctx.est[pred.task] + pred.minDur;
                est = std::max(est, ready);
            }
            for (int32_t k = lagOff_[t]; k < lagOff_[t + 1]; ++k) {
                const Pred &edge = lags_[k];
                Time p_start = ctx.assign[edge.task].scheduled()
                    ? ctx.assign[edge.task].start
                    : ctx.est[edge.task];
                est = std::max(est, p_start + edge.minDur);
            }
            if (ctx.est[t] != est) {
                ctx.est[t] = est;
                out.changedEst = true;
            }
            out.bound = std::max(out.bound, est + ctx.cp.tail[t]);
        }
        return out;
    }

  private:
    /** A predecessor and its cached min duration (or lag). */
    struct Pred
    {
        int32_t task;
        Time minDur;
    };

    std::vector<int> topo_;
    std::vector<int32_t> predOff_;
    std::vector<Pred> preds_;
    std::vector<int32_t> lagOff_;
    std::vector<Pred> lags_;
};

/**
 * Energetic reasoning over [est, M] suffix windows: the minimum
 * energy of all unscheduled tasks whose earliest start is >= e must
 * fit into capacity within [e, M], so M >= e + ceil(energy / cap).
 * Strictly stronger than the global energy rule on staggered DAGs;
 * subscribes to est updates so it reruns after precedence tightening.
 */
class EnergeticPropagator final : public Propagator
{
  public:
    explicit EnergeticPropagator(const Model &model)
    {
        const int n = model.numTasks();
        minEnergy_.assign(n, std::vector<double>(
            model.numResources(), 0.0));
        for (int t = 0; t < n; ++t) {
            const Task &task = model.task(t);
            for (int r = 0; r < model.numResources(); ++r) {
                double min_e = -1.0;
                for (const Mode &mode : task.modes) {
                    double e = mode.usage[r] *
                        static_cast<double>(mode.duration);
                    if (min_e < 0.0 || e < min_e)
                        min_e = e;
                }
                minEnergy_[t][r] = std::max(0.0, min_e);
            }
        }
    }

    const char *name() const override { return "energetic"; }

    void onPlace(int, const Mode &, Time) override {}
    void onUnplace(int, const Mode &, Time) override {}

    Outcome
    propagate(const PropagationContext &ctx) override
    {
        Outcome out;
        const Model &model = ctx.model;
        const int n = model.numTasks();
        for (int r = 0; r < model.numResources(); ++r) {
            double cap = model.capacity(r);
            if (cap <= 0.0)
                continue;
            items_.clear();
            for (int t = 0; t < n; ++t) {
                if (ctx.assign[t].scheduled())
                    continue;
                double e = minEnergy_[t][r];
                if (e > 0.0)
                    items_.push_back({ctx.est[t], e});
            }
            if (items_.empty())
                continue;
            std::sort(items_.begin(), items_.end(),
                      [](const Item &a, const Item &b) {
                          return a.est > b.est;
                      });
            // Walking est values from latest to earliest, the
            // running sum is exactly the energy released at or after
            // the current est.
            double suffix = 0.0;
            for (const Item &item : items_) {
                suffix += item.energy;
                Time fill = static_cast<Time>(
                    std::ceil(suffix / cap - 1e-9));
                out.bound = std::max(out.bound, item.est + fill);
            }
        }
        return out;
    }

    bool wantsEstUpdates() const override { return true; }

  private:
    struct Item
    {
        Time est;
        double energy;
    };

    std::vector<std::vector<double>> minEnergy_;
    std::vector<Item> items_;
};

} // anonymous namespace

void
mergePropagatorStats(std::vector<PropagatorStats> &into,
                     const std::vector<PropagatorStats> &from)
{
    for (const PropagatorStats &f : from) {
        PropagatorStats *hit = nullptr;
        for (PropagatorStats &i : into) {
            if (i.name == f.name) {
                hit = &i;
                break;
            }
        }
        if (!hit) {
            into.push_back(f);
            continue;
        }
        hit->invocations += f.invocations;
        hit->prunings += f.prunings;
        hit->seconds += f.seconds;
    }
}

std::unique_ptr<Propagator>
makePrecedencePropagator(const Model &model)
{
    return std::make_unique<PrecedencePropagator>(model);
}

std::unique_ptr<Propagator>
makeTimetablePropagator(const Model &model)
{
    return std::make_unique<TimetablePropagator>(model);
}

std::unique_ptr<Propagator>
makeDisjunctivePropagator(const Model &model)
{
    return std::make_unique<DisjunctivePropagator>(model);
}

std::unique_ptr<Propagator>
makeEnergeticPropagator(const Model &model)
{
    return std::make_unique<EnergeticPropagator>(model);
}

PropagationEngine::PropagationEngine(const Model &model, bool packed)
    : profile_(model, packed),
      trail_(&stateArena_),
      queue_(&stateArena_)
{}

void
PropagationEngine::add(std::unique_ptr<Propagator> propagator)
{
    PropagatorStats stats;
    stats.name = propagator->name();
    stats_.push_back(std::move(stats));
    propagators_.push_back(std::move(propagator));
    queued_.push_back(0);
}

void
PropagationEngine::place(int task, const Mode &mode, Time start)
{
    profile_.place(mode, start);
    for (const std::unique_ptr<Propagator> &p : propagators_)
        p->onPlace(task, mode, start);
    trail_.push_back(TrailEntry{task, &mode, start});
}

void
PropagationEngine::undo()
{
    hilp_assert(!trail_.empty());
    TrailEntry entry = trail_.back();
    trail_.pop_back();
    // Reverse notification order, so propagators unwind placements
    // exactly opposite to how they saw them.
    for (auto it = propagators_.rbegin();
         it != propagators_.rend(); ++it)
        (*it)->onUnplace(entry.task, *entry.mode, entry.start);
    profile_.remove(*entry.mode, entry.start);
}

Time
PropagationEngine::fixpoint(PropagationContext &ctx)
{
    Time bound = std::max(ctx.makespan, ctx.externalLowerBound);
    const int n = static_cast<int>(propagators_.size());
    queue_.clear();
    for (int i = 0; i < n; ++i) {
        queue_.push_back(i);
        queued_[i] = 1;
    }
    size_t head = 0;
    while (head < queue_.size()) {
        // The base bound (or an earlier propagator) may already have
        // proven the cutoff; don't charge it to the next rule.
        if (bound >= ctx.ub)
            break;
        int i = queue_[head++];
        queued_[i] = 0;
        PropagatorStats &stats = stats_[i];
        Propagator::Outcome out;
        // Every kTraceSample-th invocation of a rule becomes a span
        // on the trace timeline; a null name keeps the span a no-op
        // on the unsampled (or untraced) calls.
        bool traced = trace::enabled() &&
            (stats.invocations & (kTraceSample - 1)) == 0;
        trace::Span span(traced ? propagators_[i]->name() : nullptr);
        if ((stats.invocations & (kTimingSample - 1)) == 0) {
            Clock::time_point t0 = Clock::now();
            out = propagators_[i]->propagate(ctx);
            stats.seconds += std::chrono::duration<double>(
                Clock::now() - t0).count() *
                static_cast<double>(kTimingSample);
        } else {
            out = propagators_[i]->propagate(ctx);
        }
        if (traced)
            span.arg(trace::Arg::intArg("bound", out.bound));
        ++stats.invocations;
        bound = std::max(bound, out.bound);
        if (out.bound >= ctx.ub)
            ++stats.prunings;
        if (out.changedEst) {
            for (int j = 0; j < n; ++j) {
                if (j != i && !queued_[j] &&
                    propagators_[j]->wantsEstUpdates()) {
                    queued_[j] = 1;
                    queue_.push_back(j);
                }
            }
        }
    }
    return bound;
}

std::vector<PropagatorStats>
PropagationEngine::stats() const
{
    return stats_;
}

} // namespace cp
} // namespace hilp
