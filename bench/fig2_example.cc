/**
 * @file
 * Figure 2: the two-application worked example. Regenerates the
 * paper's numbers: the naive 17 s CPU schedule, HILP's optimal 7 s
 * schedule (2.4x), and the MA/HILP/Gables WLP comparison (1.0 /
 * 1.7 / 2.4).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/gables.hh"
#include "baselines/multiamdahl.hh"
#include "common.hh"
#include "hilp/showcase.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

EngineOptions
exampleEngine()
{
    EngineOptions options;
    options.initialStepS = 1.0;
    options.horizonSteps = 64;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0;
    return options;
}

void
emitFigure()
{
    bench::banner(
        "Figure 2 - two-application example",
        "Applications m and n (setup/compute/teardown) on a CPU+GPU+"
        "DSA SoC.\nPaper: naive 17 s; HILP 7 s (2.4x); avg WLP: MA "
        "1.0, HILP 1.7, Gables 2.4.");

    ProblemSpec spec = makeTwoAppExample();
    EvalResult hilp_result = evaluate(spec, exampleEngine());
    baselines::MaResult ma = baselines::evaluateMultiAmdahl(spec);
    EvalResult gables =
        baselines::evaluateGables(spec, exampleEngine());

    Table table({"model", "exec time (s)", "avg WLP",
                 "speedup vs naive"});
    table.setAlign(0, Table::Align::Left);
    table.addRow(RowBuilder()
                     .cell(std::string("naive all-on-CPU"))
                     .cell(kTwoAppNaiveCpuS, 0)
                     .cell(1.0, 1)
                     .cell(1.0, 2)
                     .take());
    table.addRow(RowBuilder()
                     .cell(std::string("MultiAmdahl"))
                     .cell(ma.makespanS, 0)
                     .cell(ma.averageWlp(), 1)
                     .cell(kTwoAppNaiveCpuS / ma.makespanS, 2)
                     .take());
    table.addRow(RowBuilder()
                     .cell(std::string("HILP"))
                     .cell(hilp_result.makespanS, 0)
                     .cell(hilp_result.averageWlp, 1)
                     .cell(kTwoAppNaiveCpuS / hilp_result.makespanS, 2)
                     .take());
    table.addRow(RowBuilder()
                     .cell(std::string("Gables"))
                     .cell(gables.makespanS, 0)
                     .cell(gables.averageWlp, 1)
                     .cell(kTwoAppNaiveCpuS / gables.makespanS, 2)
                     .take());
    table.print();

    bench::section("HILP optimal schedule (paper Fig. 2, mark 6)");
    std::printf("%s", hilp_result.schedule.gantt().c_str());
    bench::section("Gables packing (paper Fig. 2, mark 8)");
    std::printf("%s", gables.schedule.gantt().c_str());
}

void
BM_SolveTwoAppExample(benchmark::State &state)
{
    ProblemSpec spec = makeTwoAppExample();
    EngineOptions options = exampleEngine();
    for (auto _ : state) {
        EvalResult result = evaluate(spec, options);
        benchmark::DoNotOptimize(result.makespanS);
    }
}
BENCHMARK(BM_SolveTwoAppExample)->Unit(benchmark::kMillisecond);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
