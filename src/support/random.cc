#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace hilp {

namespace {

/** splitmix64 step, used only to expand the seed. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    hilp_assert(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    uint64_t value;
    do {
        value = next();
    } while (value >= limit);
    return lo + static_cast<int64_t>(value % range);
}

double
Rng::uniformDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformDouble(double lo, double hi)
{
    return lo + (hi - lo) * uniformDouble();
}

bool
Rng::chance(double p)
{
    return uniformDouble() < p;
}

double
Rng::gaussian(double mu, double sigma)
{
    if (haveSpare_) {
        haveSpare_ = false;
        return mu + sigma * spare_;
    }
    double u;
    double v;
    double s;
    do {
        u = uniformDouble(-1.0, 1.0);
        v = uniformDouble(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    haveSpare_ = true;
    return mu + sigma * u * factor;
}

} // namespace hilp
