/** @file Unit tests for the metrics registry. */

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "support/metrics.hh"
#include "support/thread_pool.hh"

namespace hilp {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates)
{
    metrics::Counter counter("test.counter.basic");
    EXPECT_EQ(counter.value(), 0);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42);
    counter.add(-2);
    EXPECT_EQ(counter.value(), 40);
    counter.reset();
    EXPECT_EQ(counter.value(), 0);
}

TEST(MetricsTest, RegistryReturnsSameObjectForSameName)
{
    metrics::Counter &a = metrics::counter("test.registry.same");
    metrics::Counter &b = metrics::counter("test.registry.same");
    EXPECT_EQ(&a, &b);
    a.reset();
    a.add(7);
    EXPECT_EQ(b.value(), 7);
    a.reset();
}

TEST(MetricsTest, GaugeKeepsLastValue)
{
    metrics::Gauge gauge("test.gauge.basic");
    EXPECT_EQ(gauge.value(), 0.0);
    gauge.set(2.5);
    gauge.set(-1.25);
    EXPECT_EQ(gauge.value(), -1.25);
}

TEST(MetricsTest, HistogramBucketsAreLogScale)
{
    EXPECT_EQ(metrics::Histogram::bucketOf(-5), 0);
    EXPECT_EQ(metrics::Histogram::bucketOf(0), 0);
    EXPECT_EQ(metrics::Histogram::bucketOf(1), 1);
    EXPECT_EQ(metrics::Histogram::bucketOf(2), 2);
    EXPECT_EQ(metrics::Histogram::bucketOf(3), 2);
    EXPECT_EQ(metrics::Histogram::bucketOf(4), 3);
    EXPECT_EQ(metrics::Histogram::bucketOf(1023), 10);
    EXPECT_EQ(metrics::Histogram::bucketOf(1024), 11);
    EXPECT_EQ(metrics::Histogram::bucketOf(
        std::numeric_limits<int64_t>::max()), 63);
}

TEST(MetricsTest, HistogramSnapshotStatistics)
{
    metrics::Histogram histogram("test.histogram.stats");
    for (int64_t value : {1, 2, 3, 100})
        histogram.record(value);
    metrics::HistogramSnapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, 4);
    EXPECT_EQ(snap.sum, 106);
    EXPECT_EQ(snap.min, 1);
    EXPECT_EQ(snap.max, 100);
    EXPECT_DOUBLE_EQ(snap.mean(), 106.0 / 4.0);
    // Quantiles are exact at the extremes, bucket-bounded between.
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);
    double p50 = snap.quantile(0.5);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p50, 3.0);

    histogram.reset();
    snap = histogram.snapshot();
    EXPECT_EQ(snap.count, 0);
    EXPECT_EQ(snap.mean(), 0.0);
}

TEST(MetricsTest, QuantileOfEmptySnapshotIsZero)
{
    metrics::HistogramSnapshot snap;
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 0.0);
}

TEST(MetricsTest, QuantileOfAllZeroSamples)
{
    metrics::Histogram histogram("test.histogram.zeros");
    for (int i = 0; i < 5; ++i)
        histogram.record(0);
    metrics::HistogramSnapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, 5);
    // Every sample lands in the <= 0 bucket; every quantile is 0.
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.99), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 0.0);
}

TEST(MetricsTest, QuantileOfSingleSampleIsThatSample)
{
    metrics::Histogram histogram("test.histogram.single");
    histogram.record(7);
    metrics::HistogramSnapshot snap = histogram.snapshot();
    for (double q : {0.0, 0.25, 0.5, 0.95, 1.0})
        EXPECT_DOUBLE_EQ(snap.quantile(q), 7.0) << "q=" << q;
}

TEST(MetricsTest, QuantileExtremesAreExactAndClamped)
{
    metrics::Histogram histogram("test.histogram.extremes");
    // 2 and 3 share the [2,3] bucket: interpolation alone would give
    // q=0 a value of 2.5, but the extremes must return the recorded
    // min/max exactly (out-of-range q clamps to them too).
    histogram.record(2);
    histogram.record(3);
    metrics::HistogramSnapshot snap = histogram.snapshot();
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(snap.quantile(-1.0), 2.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 3.0);
    EXPECT_DOUBLE_EQ(snap.quantile(2.0), 3.0);
}

TEST(MetricsTest, QuantileInterpolatesWithinBucket)
{
    metrics::Histogram histogram("test.histogram.interp");
    // 4 and 7 both land in the [4,7] bucket. The p50 rank is the
    // first of the two samples: linear interpolation puts it halfway
    // into the bucket's span, between the recorded values.
    histogram.record(4);
    histogram.record(7);
    metrics::HistogramSnapshot snap = histogram.snapshot();
    double p50 = snap.quantile(0.5);
    EXPECT_GE(p50, 4.0);
    EXPECT_LE(p50, 7.0);
    // Monotone in q, and never outside [min, max].
    double p25 = snap.quantile(0.25);
    double p95 = snap.quantile(0.95);
    EXPECT_LE(p25, p50);
    EXPECT_LE(p50, p95);
    EXPECT_GE(p25, 4.0);
    EXPECT_LE(p95, 7.0);
}

TEST(MetricsTest, QuantileAcrossBucketsRespectsOrdering)
{
    metrics::Histogram histogram("test.histogram.spread");
    for (int64_t value : {1, 10, 100, 1000, 10000})
        histogram.record(value);
    metrics::HistogramSnapshot snap = histogram.snapshot();
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 10000.0);
    // p99 with five samples targets the last one: its bucket is
    // [8192, 16383], so the estimate lands at 10000 after clamping
    // or just below it inside the bucket.
    EXPECT_GE(snap.quantile(0.99), 8192.0);
    EXPECT_LE(snap.quantile(0.99), 10000.0);
    double last = 0.0;
    for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        double value = snap.quantile(q);
        EXPECT_GE(value, last) << "q=" << q;
        last = value;
    }
}

TEST(MetricsTest, SnapshotAllCarriesEveryKind)
{
    metrics::counter("test.snapall.counter").reset();
    metrics::counter("test.snapall.counter").add(9);
    metrics::gauge("test.snapall.gauge").set(0.5);
    metrics::histogram("test.snapall.histogram").reset();
    metrics::histogram("test.snapall.histogram").record(3);

    metrics::RegistrySnapshot all = metrics::snapshotAll();
    bool counter_seen = false, gauge_seen = false, histo_seen = false;
    for (const auto &entry : all.counters)
        if (entry.first == "test.snapall.counter") {
            counter_seen = true;
            EXPECT_EQ(entry.second, 9);
        }
    for (const auto &entry : all.gauges)
        if (entry.first == "test.snapall.gauge") {
            gauge_seen = true;
            EXPECT_DOUBLE_EQ(entry.second, 0.5);
        }
    for (const auto &entry : all.histograms)
        if (entry.first == "test.snapall.histogram") {
            histo_seen = true;
            EXPECT_EQ(entry.second.count, 1);
        }
    EXPECT_TRUE(counter_seen);
    EXPECT_TRUE(gauge_seen);
    EXPECT_TRUE(histo_seen);
    metrics::counter("test.snapall.counter").reset();
    metrics::histogram("test.snapall.histogram").reset();
}

TEST(MetricsTest, ConcurrentCounterIncrementsMergeExactly)
{
    metrics::Counter &counter =
        metrics::counter("test.counter.concurrent");
    counter.reset();
    constexpr int kTasks = 64;
    constexpr int kAddsPerTask = 1000;
    ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t)
        pool.submit([&counter] {
            for (int i = 0; i < kAddsPerTask; ++i)
                counter.add(1);
        });
    // wait() establishes the happens-before edge that makes the
    // merged value exact, matching how sweeps read metrics.
    pool.wait();
    EXPECT_EQ(counter.value(),
              static_cast<int64_t>(kTasks) * kAddsPerTask);
    counter.reset();
}

TEST(MetricsTest, ConcurrentHistogramRecordsMergeExactly)
{
    metrics::Histogram &histogram =
        metrics::histogram("test.histogram.concurrent");
    histogram.reset();
    constexpr int kTasks = 32;
    constexpr int kSamplesPerTask = 500;
    ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t)
        pool.submit([&histogram] {
            for (int i = 0; i < kSamplesPerTask; ++i)
                histogram.record(i + 1);
        });
    pool.wait();
    metrics::HistogramSnapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count,
              static_cast<int64_t>(kTasks) * kSamplesPerTask);
    EXPECT_EQ(snap.sum, static_cast<int64_t>(kTasks) *
              kSamplesPerTask * (kSamplesPerTask + 1) / 2);
    EXPECT_EQ(snap.min, 1);
    EXPECT_EQ(snap.max, kSamplesPerTask);
    histogram.reset();
}

TEST(MetricsTest, SnapshotJsonCarriesRegisteredMetrics)
{
    metrics::counter("test.snapshot.counter").reset();
    metrics::counter("test.snapshot.counter").add(5);
    metrics::gauge("test.snapshot.gauge").set(1.5);
    metrics::histogram("test.snapshot.histogram").reset();
    metrics::histogram("test.snapshot.histogram").record(10);

    Json snap = metrics::snapshotJson();
    const Json *counters = snap.find("counters");
    ASSERT_NE(counters, nullptr);
    const Json *value = counters->find("test.snapshot.counter");
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->intValue(), 5);

    const Json *gauges = snap.find("gauges");
    ASSERT_NE(gauges, nullptr);
    const Json *gauge = gauges->find("test.snapshot.gauge");
    ASSERT_NE(gauge, nullptr);
    EXPECT_DOUBLE_EQ(gauge->numberValue(), 1.5);

    const Json *histograms = snap.find("histograms");
    ASSERT_NE(histograms, nullptr);
    const Json *histogram = histograms->find("test.snapshot.histogram");
    ASSERT_NE(histogram, nullptr);
    const Json *count = histogram->find("count");
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->intValue(), 1);

    metrics::counter("test.snapshot.counter").reset();
    metrics::histogram("test.snapshot.histogram").reset();
}

TEST(MetricsTest, SnapshotCsvHasHeaderAndRows)
{
    metrics::counter("test.csv.counter").reset();
    metrics::counter("test.csv.counter").add(3);
    std::string csv = metrics::snapshotCsv();
    EXPECT_NE(csv.find("metric,kind,value"), std::string::npos);
    EXPECT_NE(csv.find("test.csv.counter,counter,3"),
              std::string::npos);
    metrics::counter("test.csv.counter").reset();
}

TEST(MetricsTest, CounterVisibleFromShortLivedThreads)
{
    // A thread's cell must survive (and stay counted) after the
    // thread exits - workers come and go over a sweep's lifetime.
    metrics::Counter &counter =
        metrics::counter("test.counter.thread_exit");
    counter.reset();
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&counter] { counter.add(10); });
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(), 80);
    counter.reset();
}

} // anonymous namespace
} // namespace hilp
