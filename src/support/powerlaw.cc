#include "powerlaw.hh"

#include <cmath>

#include "logging.hh"
#include "random.hh"
#include "stats.hh"

namespace hilp {

double
PowerLaw::eval(double x) const
{
    hilp_assert(x > 0.0);
    return a * std::pow(x, b);
}

double
PowerLaw::scaleFrom(double x_ref, double x) const
{
    hilp_assert(x_ref > 0.0 && x > 0.0);
    return std::pow(x / x_ref, b);
}

PowerLaw
fitPowerLaw(const std::vector<double> &xs, const std::vector<double> &ys)
{
    hilp_assert(xs.size() == ys.size());
    hilp_assert(xs.size() >= 2);
    std::vector<double> lx(xs.size());
    std::vector<double> ly(ys.size());
    for (size_t i = 0; i < xs.size(); ++i) {
        hilp_assert(xs[i] > 0.0 && ys[i] > 0.0);
        lx[i] = std::log(xs[i]);
        ly[i] = std::log(ys[i]);
    }
    LinearFit lf = linearFit(lx, ly);
    PowerLaw law;
    law.a = std::exp(lf.intercept);
    law.b = lf.slope;
    law.r2 = lf.r2;
    return law;
}

std::vector<double>
samplePowerLaw(const PowerLaw &law, const std::vector<double> &xs,
               double log_noise_sd, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> ys;
    ys.reserve(xs.size());
    for (double x : xs) {
        double y = law.eval(x);
        if (log_noise_sd > 0.0)
            y *= std::exp(rng.gaussian(0.0, log_noise_sd));
        ys.push_back(y);
    }
    return ys;
}

} // namespace hilp
