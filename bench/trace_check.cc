/**
 * @file
 * Standalone validator for exported Chrome trace files. Reads the
 * JSON produced by --trace-out, parses it with support/json, and
 * runs the structural checks (traceEvents present, complete event
 * fields, per-thread monotonic timestamps, balanced and properly
 * nested B/E pairs). Exits 0 when the trace is valid; scripts use it
 * as the smoke test that the observability layer's output really is
 * what Perfetto expects.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json.hh"
#include "support/trace.hh"

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
        return 2;
    }

    std::ifstream file(argv[1]);
    if (!file) {
        std::fprintf(stderr, "trace_check: cannot open '%s'\n",
                     argv[1]);
        return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();

    hilp::Json trace;
    std::string error;
    if (!hilp::Json::parse(buffer.str(), &trace, &error)) {
        std::fprintf(stderr, "trace_check: '%s' is not JSON: %s\n",
                     argv[1], error.c_str());
        return 1;
    }

    error = hilp::trace::validateChromeTrace(trace);
    if (!error.empty()) {
        std::fprintf(stderr,
                     "trace_check: '%s' is not a valid Chrome "
                     "trace: %s\n", argv[1], error.c_str());
        return 1;
    }

    const hilp::Json *events = trace.find("traceEvents");
    std::printf("trace_check: %s ok (%zu events)\n", argv[1],
                events ? events->size() : 0);
    return 0;
}
