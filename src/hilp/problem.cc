#include "problem.hh"

#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {

std::vector<std::pair<int, int>>
AppSpec::effectiveDeps() const
{
    if (independentPhases)
        return {};
    if (!deps.empty())
        return deps;
    std::vector<std::pair<int, int>> chain;
    for (int p = 0; p + 1 < static_cast<int>(phases.size()); ++p)
        chain.emplace_back(p, p + 1);
    return chain;
}

std::vector<StartLag>
AppSpec::effectiveStartLags() const
{
    if (independentPhases)
        return {};
    return startLags;
}

int
ProblemSpec::numPhases() const
{
    int count = 0;
    for (const AppSpec &app : apps)
        count += static_cast<int>(app.phases.size());
    return count;
}

std::string
ProblemSpec::validate() const
{
    if (cpuCores < 0.0)
        return "negative CPU core capacity";
    if (apps.empty())
        return "workload has no applications";
    for (const AppSpec &app : apps) {
        if (app.phases.empty())
            return format("application %s has no phases",
                          app.name.c_str());
        for (const PhaseSpec &phase : app.phases) {
            if (phase.options.empty())
                return format("phase %s has no unit options",
                              phase.name.c_str());
            bool any_usable = false;
            for (const UnitOption &option : phase.options) {
                if (option.timeS < 0.0)
                    return format("phase %s option %s has negative "
                                  "time", phase.name.c_str(),
                                  option.label.c_str());
                if (option.device != kCpuPool &&
                    (option.device < 0 ||
                     option.device >=
                         static_cast<int>(deviceNames.size()))) {
                    return format("phase %s option %s references "
                                  "unknown device %d",
                                  phase.name.c_str(),
                                  option.label.c_str(), option.device);
                }
                if (option.extraUsage.size() > extraResources.size())
                    return format("phase %s option %s has more extra-"
                                  "usage entries than extra resources",
                                  phase.name.c_str(),
                                  option.label.c_str());
                bool usable = option.powerW <= powerBudgetW &&
                              option.bwGBs <= bandwidthGBs &&
                              option.cpuCores <= cpuCores;
                for (size_t r = 0; r < option.extraUsage.size();
                     ++r) {
                    if (option.extraUsage[r] < 0.0)
                        return format("phase %s option %s has "
                                      "negative extra usage",
                                      phase.name.c_str(),
                                      option.label.c_str());
                    usable = usable && option.extraUsage[r] <=
                                           extraResources[r].capacity;
                }
                any_usable = any_usable || usable;
            }
            if (!any_usable)
                return format("phase %s has no option within the "
                              "power/bandwidth/core budgets",
                              phase.name.c_str());
        }
        for (auto [from, to] : app.deps) {
            int n = static_cast<int>(app.phases.size());
            if (from < 0 || from >= n || to < 0 || to >= n ||
                from == to) {
                return format("application %s has an invalid "
                              "dependency edge (%d, %d)",
                              app.name.c_str(), from, to);
            }
        }
        for (const StartLag &lag : app.startLags) {
            int n = static_cast<int>(app.phases.size());
            if (lag.from < 0 || lag.from >= n || lag.to < 0 ||
                lag.to >= n || lag.from == lag.to) {
                return format("application %s has an invalid start "
                              "lag (%d, %d)", app.name.c_str(),
                              lag.from, lag.to);
            }
            if (lag.lagS < 0.0)
                return format("application %s has a negative start "
                              "lag", app.name.c_str());
        }
    }
    return "";
}

} // namespace hilp
