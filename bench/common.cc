#include "common.hh"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dse/checkpoint.hh"
#include "dse/pareto.hh"
#include "service/client.hh"
#include "service/eval_service.hh"
#include "service/telemetry_http.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "support/trace.hh"
#include "support/version.hh"

namespace hilp {
namespace bench {

namespace {

std::string g_trace_path;
std::string g_metrics_path;
int g_solver_threads = 1;
bool g_deterministic_search = false;
std::string g_checkpoint_path;
bool g_resume = false;
double g_point_timeout_s = 0.0;
bool g_fail_fast = false;
bool g_nogoods = false;
bool g_lns = false;
bool g_packed_layout = true;
std::string g_connect;
bool g_no_reuse = false;
size_t g_max_configs = 0;
size_t g_memo_bytes = 0;
std::string g_metrics_addr;

void
dumpTelemetry()
{
    if (!g_trace_path.empty()) {
        std::string error = trace::writeFile(g_trace_path);
        if (!error.empty())
            warn("trace export failed: %s", error.c_str());
        else
            inform("wrote Chrome trace to %s (open in "
                   "https://ui.perfetto.dev)", g_trace_path.c_str());
    }
    if (!g_metrics_path.empty()) {
        std::string text = metrics::snapshotJson().dump(2);
        text += '\n';
        std::FILE *file = std::fopen(g_metrics_path.c_str(), "w");
        if (!file) {
            warn("cannot open metrics output '%s'",
                 g_metrics_path.c_str());
            return;
        }
        std::fwrite(text.data(), 1, text.size(), file);
        std::fclose(file);
        inform("wrote metrics snapshot to %s", g_metrics_path.c_str());
    }
}

} // anonymous namespace

void
initHarness(int *argc, char **argv)
{
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace-out=", 12) == 0)
            g_trace_path = arg + 12;
        else if (std::strncmp(arg, "--metrics-out=", 14) == 0)
            g_metrics_path = arg + 14;
        else if (std::strncmp(arg, "--solver-threads=", 17) == 0)
            g_solver_threads = std::atoi(arg + 17);
        else if (std::strcmp(arg, "--deterministic-search") == 0)
            g_deterministic_search = true;
        else if (std::strncmp(arg, "--checkpoint=", 13) == 0)
            g_checkpoint_path = arg + 13;
        else if (std::strcmp(arg, "--resume") == 0)
            g_resume = true;
        else if (std::strncmp(arg, "--point-timeout=", 16) == 0)
            g_point_timeout_s = std::atof(arg + 16);
        else if (std::strcmp(arg, "--fail-fast") == 0)
            g_fail_fast = true;
        else if (std::strcmp(arg, "--nogoods") == 0)
            g_nogoods = true;
        else if (std::strcmp(arg, "--lns") == 0)
            g_lns = true;
        else if (std::strncmp(arg, "--layout=", 9) == 0) {
            const char *layout = arg + 9;
            if (std::strcmp(layout, "legacy") == 0)
                g_packed_layout = false;
            else if (std::strcmp(layout, "packed") == 0)
                g_packed_layout = true;
            else
                fatal("--layout must be 'packed' or 'legacy', "
                      "got '%s'", layout);
        }
        else if (std::strncmp(arg, "--connect=", 10) == 0)
            g_connect = arg + 10;
        else if (std::strncmp(arg, "--metrics-addr=", 15) == 0)
            g_metrics_addr = arg + 15;
        else if (std::strcmp(arg, "--no-reuse") == 0)
            g_no_reuse = true;
        else if (std::strncmp(arg, "--max-configs=", 14) == 0)
            g_max_configs =
                static_cast<size_t>(std::atoll(arg + 14));
        else if (std::strncmp(arg, "--memo-bytes=", 13) == 0) {
            char *end = nullptr;
            g_memo_bytes = std::strtoull(arg + 13, &end, 10);
            if (*end == 'K' || *end == 'k')
                g_memo_bytes <<= 10;
            else if (*end == 'M' || *end == 'm')
                g_memo_bytes <<= 20;
            else if (*end == 'G' || *end == 'g')
                g_memo_bytes <<= 30;
        } else if (std::strcmp(arg, "--version") == 0) {
            std::printf("%s\n", versionString().c_str());
            std::exit(0);
        } else
            argv[kept++] = argv[i];
    }
    *argc = kept;
    if (!g_trace_path.empty()) {
        // Stamp the pid into the filename so concurrent harness
        // processes pointed at the same --trace-out (scripted
        // sweeps, check.sh stages) never interleave writes into one
        // file: out/trace.json becomes out/trace.<pid>.json.
        g_trace_path = trace::taggedPath(
            g_trace_path, std::to_string(::getpid()));
        trace::setEnabled(true);
    }
    if (!g_metrics_addr.empty()) {
        // The same exposition endpoint hilpd serves, in-process: a
        // long sweep can be watched live with curl while it runs.
        static service::TelemetryServer telemetry;
        std::string error;
        if (!telemetry.start(g_metrics_addr, nullptr, &error))
            fatal("--metrics-addr %s: %s", g_metrics_addr.c_str(),
                  error.c_str());
        inform("telemetry on %s (GET /metrics, /metrics.json, "
               "/healthz)", g_metrics_addr.c_str());
    }
    // Dump at exit so the trace also covers the google-benchmark
    // loops that run after each binary's figure emission.
    if (!g_trace_path.empty() || !g_metrics_path.empty())
        std::atexit(dumpTelemetry);
}

int
solverThreads()
{
    return g_solver_threads;
}

bool
deterministicSearch()
{
    return g_deterministic_search;
}

double
pointTimeoutS()
{
    return g_point_timeout_s;
}

bool
failFast()
{
    return g_fail_fast;
}

bool
useNogoods()
{
    return g_nogoods;
}

bool
useLns()
{
    return g_lns;
}

bool
packedLayout()
{
    return g_packed_layout;
}

const std::string &
connectAddress()
{
    return g_connect;
}

bool
noReuse()
{
    return g_no_reuse;
}

size_t
maxConfigs()
{
    return g_max_configs;
}

dse::SweepCheckpoint *
sweepCheckpoint()
{
    if (g_checkpoint_path.empty())
        return nullptr;
    // One checkpoint per process, shared by every sweep the binary
    // runs - the key's model kind keeps their records apart.
    static dse::SweepCheckpoint checkpoint;
    static bool opened = false;
    if (!opened) {
        std::string error;
        if (!checkpoint.open(g_checkpoint_path, g_resume, &error))
            fatal("%s", error.c_str());
        if (g_resume && checkpoint.loaded() > 0)
            inform("checkpoint %s: resuming past %zu completed "
                   "point(s)", g_checkpoint_path.c_str(),
                   checkpoint.loaded());
        opened = true;
    }
    return &checkpoint;
}

void
banner(const std::string &title, const std::string &description)
{
    std::string bar(70, '=');
    std::printf("%s\n%s\n%s\n%s\n\n", bar.c_str(), title.c_str(),
                description.c_str(), bar.c_str());
}

void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

EngineOptions
validationEngine(double solver_seconds)
{
    EngineOptions options = EngineOptions::validationMode();
    options.solver.maxSeconds = solver_seconds;
    options.solver.maxNodes = 400000;
    options.solver.threads = g_solver_threads;
    options.solver.deterministicSearch = g_deterministic_search;
    options.solver.useNogoods = g_nogoods;
    options.solver.lns = g_lns;
    options.solver.packedLayout = g_packed_layout;
    // Rerun near-optimality misses with 4x the budget, as the paper
    // does for its validation experiments.
    options.escalations = 1;
    options.pointTimeoutS = g_point_timeout_s;
    return options;
}

dse::DseOptions
explorationOptions(double solver_seconds)
{
    dse::DseOptions options;
    options.engine = EngineOptions::explorationMode();
    options.engine.solver.maxSeconds = solver_seconds;
    options.engine.solver.maxNodes = 120000;
    options.engine.solver.threads = g_solver_threads;
    options.engine.solver.deterministicSearch = g_deterministic_search;
    options.engine.solver.useNogoods = g_nogoods;
    options.engine.solver.lns = g_lns;
    options.engine.solver.packedLayout = g_packed_layout;
    options.engine.pointTimeoutS = g_point_timeout_s;
    options.failFast = g_fail_fast;
    return options;
}

std::vector<arch::SocConfig>
paperDesignSpace(double advantage)
{
    arch::DesignSpace space;
    space.dsaAdvantage = advantage;
    return enumerateDesignSpace(space, workload::dsaPriorityOrder());
}

std::vector<dse::DsePoint>
runSweep(const std::vector<arch::SocConfig> &configs,
         const workload::Workload &wl,
         const arch::Constraints &constraints, dse::ModelKind kind,
         dse::DseOptions options, workload::Variant variant,
         int copies, double advantage)
{
    options.reuse = !g_no_reuse;
    options.engine.memoMaxBytes = g_memo_bytes;

    if (g_connect.empty()) {
        // In-process: route through the process-wide EvalService so
        // consecutive sweeps of one binary share its memo and
        // warm-start store, exactly like a warm daemon would.
        static service::EvalService evalService(
            [] {
                service::ServiceOptions service_options;
                if (g_memo_bytes > 0)
                    service_options.memoMaxBytes = g_memo_bytes;
                return service_options;
            }());
        service::SweepRequest request;
        request.configs = configs;
        request.workload = wl;
        request.constraints = constraints;
        request.kind = kind;
        request.options = options;
        request.options.checkpoint = sweepCheckpoint();
        return evalService.sweep(request);
    }

    // Daemon mode: the sweep runs inside hilpd; results stream back
    // per point in the checkpoint record format. A --checkpoint file
    // captures the raw record stream, so it doubles as a --resume
    // file for a later in-process run.
    static service::ServiceClient client;
    std::string error;
    if (!client.connected() &&
        !client.connect(g_connect, &error))
        fatal("--connect %s: %s", g_connect.c_str(), error.c_str());

    service::protocol::Request request;
    request.op = configs.size() == 1 ? service::protocol::Op::Eval
                                     : service::protocol::Op::Sweep;
    request.variant = variant;
    request.copies = copies;
    request.dsaAdvantage = advantage;
    request.constraints = constraints;
    request.kind = kind;
    request.options = options;

    std::FILE *capture = nullptr;
    if (!g_checkpoint_path.empty()) {
        capture = std::fopen(g_checkpoint_path.c_str(), "a");
        if (!capture)
            warn("cannot open checkpoint capture '%s'",
                 g_checkpoint_path.c_str());
    }
    std::vector<dse::DsePoint> points;
    bool ok = client.sweep(
        request, configs, &points, &error,
        [&](const std::string &line) {
            if (!capture)
                return;
            std::fwrite(line.data(), 1, line.size(), capture);
            std::fputc('\n', capture);
            std::fflush(capture);
        });
    if (capture)
        std::fclose(capture);
    if (!ok)
        fatal("daemon sweep failed: %s", error.c_str());
    return points;
}

std::vector<dse::DsePoint>
paretoOf(const std::vector<dse::DsePoint> &points)
{
    std::vector<double> cost;
    std::vector<double> value;
    std::vector<size_t> index;
    for (size_t i = 0; i < points.size(); ++i) {
        if (!points[i].ok)
            continue;
        cost.push_back(points[i].areaMm2);
        value.push_back(points[i].speedup);
        index.push_back(i);
    }
    std::vector<dse::DsePoint> front;
    // Epsilon-dominance: a bigger SoC must buy at least 0.5% more
    // performance to count as Pareto-improving (suppresses float
    // noise between configurations with identical schedules).
    for (size_t f : dse::paretoFront(cost, value, 5e-3))
        front.push_back(points[index[f]]);
    return front;
}

dse::DsePoint
bestOf(const std::vector<dse::DsePoint> &points)
{
    dse::DsePoint best;
    for (const dse::DsePoint &point : points)
        if (point.ok && point.speedup > best.speedup)
            best = point;
    return best;
}

void
printPareto(const std::string &title,
            const std::vector<dse::DsePoint> &points)
{
    section(title);
    Table table({"config", "area (mm2)", "speedup", "avg WLP", "gap",
                 "mix"});
    table.setAlign(0, Table::Align::Left);
    for (const dse::DsePoint &point : points) {
        table.addRow(RowBuilder()
                         .cell(point.config.name())
                         .cell(point.areaMm2, 1)
                         .cell(point.speedup, 2)
                         .cell(point.averageWlp, 2)
                         .cell(point.gap, 3)
                         .cell(std::string(dse::toString(point.mix)))
                         .take());
    }
    table.print();
}

} // namespace bench
} // namespace hilp
