/**
 * @file
 * Ablation: what each stage of HILP's solver pipeline buys.
 * Compares (i) greedy list scheduling alone, (ii) greedy plus the
 * priority/mode hill climber, and (iii) the full pipeline with
 * branch-and-bound, and measures the LP-relaxation bound's
 * contribution to the certified optimality gap. Run on a
 * representative unconstrained instance and a power-constrained one
 * (where the climber's mode moves matter most).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hh"
#include "cp/bounds.hh"
#include "cp/list_scheduler.hh"
#include "cp/solver.hh"
#include "hilp/builder.hh"
#include "hilp/discretize.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

struct Instance
{
    std::string name;
    cp::Model model;
};

std::vector<Instance>
makeInstances()
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto priority = workload::dsaPriorityOrder();

    std::vector<Instance> instances;
    {
        arch::SocConfig soc;
        soc.cpuCores = 4;
        soc.gpuSms = 16;
        soc.dsas = {{16, priority[0]}, {16, priority[1]}};
        ProblemSpec spec =
            buildProblem(wl, soc, arch::Constraints{});
        instances.push_back(
            {"unconstrained (c4,g16,d2^16)",
             discretize(spec, 2.0, 1000).model});
    }
    {
        arch::Constraints constraints;
        constraints.powerBudgetW = 50.0;
        arch::SocConfig soc;
        soc.cpuCores = 4;
        soc.gpuSms = 64;
        ProblemSpec spec = buildProblem(
            workload::makeWorkload(workload::Variant::Optimized),
            soc, constraints);
        instances.push_back(
            {"50 W constrained (c4,g64,d0^0)",
             discretize(spec, 2.0, 1000).model});
    }
    return instances;
}

void
emitAblation()
{
    bench::banner(
        "Solver ablation - greedy vs hill climber vs B&B, LP bound",
        "Design choices called out in DESIGN.md: multi-start greedy\n"
        "seeds the incumbent, the priority/mode hill climber fixes\n"
        "myopic mode choices under tight budgets, branch-and-bound\n"
        "closes the rest, and the LP relaxation tightens the\n"
        "certified lower bound beyond the combinatorial arguments.");

    for (Instance &instance : makeInstances()) {
        bench::section(instance.name);

        cp::ListResult greedy = cp::bestGreedy(instance.model, 8, 1);
        cp::ListResult improved =
            cp::improveGreedy(instance.model, greedy, 400);

        cp::SolverOptions full;
        full.maxSeconds = 5.0;
        full.targetGap = 0.0;
        cp::Result solved = cp::Solver(full).solve(instance.model);

        cp::LowerBounds no_lp =
            cp::computeLowerBounds(instance.model, false);
        cp::LowerBounds with_lp =
            cp::computeLowerBounds(instance.model, true);

        Table table({"stage", "makespan (steps)", "gap vs final LB"});
        table.setAlign(0, Table::Align::Left);
        auto gap_of = [&](cp::Time makespan) {
            if (makespan <= 0)
                return 0.0;
            return static_cast<double>(makespan - solved.lowerBound) /
                   static_cast<double>(makespan);
        };
        table.addRow(RowBuilder()
                         .cell(std::string("greedy only"))
                         .cell(static_cast<int64_t>(greedy.makespan))
                         .cell(gap_of(greedy.makespan), 3)
                         .take());
        table.addRow(
            RowBuilder()
                .cell(std::string("greedy + hill climber"))
                .cell(static_cast<int64_t>(improved.makespan))
                .cell(gap_of(improved.makespan), 3)
                .take());
        table.addRow(RowBuilder()
                         .cell(std::string("full solver (with B&B)"))
                         .cell(static_cast<int64_t>(solved.makespan))
                         .cell(solved.gap(), 3)
                         .take());
        table.print();

        std::printf("lower bounds (steps): critical-path %d, "
                    "group-load %d, energy %d, LP %d\n",
                    no_lp.criticalPath, no_lp.groupLoad,
                    no_lp.resourceEnergy, with_lp.lpRelaxation);
    }
}

void
BM_GreedyOnly(benchmark::State &state)
{
    auto instances = makeInstances();
    for (auto _ : state) {
        cp::ListResult result =
            cp::bestGreedy(instances[0].model, 8, 1);
        benchmark::DoNotOptimize(result.makespan);
    }
}
BENCHMARK(BM_GreedyOnly)->Unit(benchmark::kMillisecond);

void
BM_HillClimber(benchmark::State &state)
{
    auto instances = makeInstances();
    cp::ListResult greedy = cp::bestGreedy(instances[0].model, 8, 1);
    for (auto _ : state) {
        cp::ListResult result =
            cp::improveGreedy(instances[0].model, greedy, 400);
        benchmark::DoNotOptimize(result.makespan);
    }
}
BENCHMARK(BM_HillClimber)->Unit(benchmark::kMillisecond)->Iterations(5);

void
BM_LpBound(benchmark::State &state)
{
    auto instances = makeInstances();
    for (auto _ : state) {
        cp::LowerBounds bounds =
            cp::computeLowerBounds(instances[0].model, true);
        benchmark::DoNotOptimize(bounds.lpRelaxation);
    }
}
BENCHMARK(BM_LpBound)->Unit(benchmark::kMillisecond)->Iterations(5);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
