#include "explore.hh"

#include <algorithm>
#include <map>
#include <tuple>

namespace hilp {
namespace dse {

// The sweep implementation behind exploreSpace/evaluatePoint lives
// in service/eval_service.cc: the dse:: entry points are thin
// clients of the shared sweep core the EvalService owns. Only the
// model-name table stays here, where checkpoint.cc (same library)
// needs it.

const char *
toString(ModelKind kind)
{
    switch (kind) {
      case ModelKind::MultiAmdahl:
        return "MA";
      case ModelKind::Hilp:
        return "HILP";
      case ModelKind::Gables:
        return "Gables";
    }
    return "unknown";
}

std::vector<std::vector<size_t>>
similarityChains(const std::vector<arch::SocConfig> &configs)
{
    using Key = std::tuple<int, size_t, int, double, std::vector<int>>;
    std::map<Key, std::vector<size_t>> chains;
    for (size_t i = 0; i < configs.size(); ++i) {
        const arch::SocConfig &config = configs[i];
        int pes = config.dsas.empty() ? 0 : config.dsas.front().pes;
        std::vector<int> targets;
        targets.reserve(config.dsas.size());
        for (const arch::DsaSpec &dsa : config.dsas)
            targets.push_back(dsa.target);
        chains[{config.cpuCores, config.dsas.size(), pes,
                config.dsaAdvantage, std::move(targets)}]
            .push_back(i);
    }
    std::vector<std::vector<size_t>> result;
    result.reserve(chains.size());
    for (auto &[key, indices] : chains) {
        std::sort(indices.begin(), indices.end(),
                  [&](size_t a, size_t b) {
                      if (configs[a].gpuSms != configs[b].gpuSms)
                          return configs[a].gpuSms < configs[b].gpuSms;
                      return a < b;
                  });
        result.push_back(std::move(indices));
    }
    return result;
}

} // namespace dse
} // namespace hilp
