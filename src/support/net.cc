#include "net.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "str.hh"

namespace hilp {
namespace net {

namespace {

/** One parsed listen/connect address. */
struct Address
{
    bool ok = false;
    bool isUnix = false;
    std::string path;  //!< Unix socket path.
    std::string host;  //!< TCP host.
    std::string port;  //!< TCP port (text, for getaddrinfo).
    std::string error;
};

Address
parseAddress(const std::string &text)
{
    Address address;
    if (text.rfind("unix:", 0) == 0) {
        address.isUnix = true;
        address.path = text.substr(5);
        if (address.path.empty()) {
            address.error = "empty unix socket path";
            return address;
        }
        address.ok = true;
        return address;
    }
    std::string rest = text;
    if (rest.rfind("tcp:", 0) == 0) {
        rest = rest.substr(4);
    } else if (rest.rfind("/", 0) == 0 || rest.rfind("./", 0) == 0) {
        address.isUnix = true;
        address.path = rest;
        address.ok = true;
        return address;
    }
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 >= rest.size()) {
        address.error = format(
            "cannot parse address '%s' (expected unix:PATH or "
            "tcp:HOST:PORT)", text.c_str());
        return address;
    }
    address.host = rest.substr(0, colon);
    address.port = rest.substr(colon + 1);
    if (address.host.empty())
        address.host = "127.0.0.1";
    address.ok = true;
    return address;
}

bool
fillUnixAddr(const std::string &path, sockaddr_un *addr,
             std::string *error)
{
    if (path.size() >= sizeof(addr->sun_path)) {
        if (error)
            *error = format("unix socket path too long: '%s'",
                            path.c_str());
        return false;
    }
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // anonymous namespace

int
Socket::release()
{
    int fd = fd_;
    fd_ = -1;
    return fd;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

long
Socket::read(void *data, size_t size)
{
    for (;;) {
        long got = ::read(fd_, data, size);
        if (got >= 0 || errno != EINTR)
            return got;
    }
}

bool
Socket::writeAll(const void *data, size_t size)
{
    const char *cursor = static_cast<const char *>(data);
    size_t left = size;
    while (left > 0) {
        long sent = ::send(fd_, cursor, left, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        cursor += sent;
        left -= static_cast<size_t>(sent);
    }
    return true;
}

namespace {

bool
setSocketTimeout(int fd, int option, double seconds)
{
    if (fd < 0 || seconds < 0.0)
        return false;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    return ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) == 0;
}

} // anonymous namespace

bool
Socket::setReadTimeout(double seconds)
{
    return setSocketTimeout(fd_, SO_RCVTIMEO, seconds);
}

bool
Socket::setWriteTimeout(double seconds)
{
    return setSocketTimeout(fd_, SO_SNDTIMEO, seconds);
}

bool
Listener::open(const std::string &address, std::string *error)
{
    Address parsed = parseAddress(address);
    if (!parsed.ok) {
        if (error)
            *error = parsed.error;
        return false;
    }

    if (parsed.isUnix) {
        sockaddr_un addr;
        if (!fillUnixAddr(parsed.path, &addr, error))
            return false;

        // A socket file may be left behind by a killed daemon. Probe
        // it: if something still accepts connections the address is
        // genuinely in use; otherwise it is stale and safe to remove.
        struct stat st;
        if (::stat(parsed.path.c_str(), &st) == 0) {
            if (!S_ISSOCK(st.st_mode)) {
                if (error)
                    *error = format(
                        "'%s' exists and is not a socket",
                        parsed.path.c_str());
                return false;
            }
            int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (probe >= 0) {
                int live = ::connect(
                    probe, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr));
                ::close(probe);
                if (live == 0) {
                    if (error)
                        *error = format(
                            "address in use: a daemon is live on "
                            "'%s'", parsed.path.c_str());
                    return false;
                }
            }
            ::unlink(parsed.path.c_str());
        }

        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0 ||
            ::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 64) != 0) {
            if (error)
                *error = format("cannot listen on '%s': %s",
                                parsed.path.c_str(),
                                std::strerror(errno));
            if (fd >= 0)
                ::close(fd);
            return false;
        }
        socket_ = Socket(fd);
        unixPath_ = parsed.path;
        return true;
    }

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo *info = nullptr;
    int rc = ::getaddrinfo(parsed.host.c_str(), parsed.port.c_str(),
                           &hints, &info);
    if (rc != 0) {
        if (error)
            *error = format("cannot resolve '%s:%s': %s",
                            parsed.host.c_str(), parsed.port.c_str(),
                            ::gai_strerror(rc));
        return false;
    }
    int fd = -1;
    for (addrinfo *ai = info; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        int on = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 64) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(info);
    if (fd < 0) {
        if (error)
            *error = format("cannot listen on '%s:%s': %s",
                            parsed.host.c_str(), parsed.port.c_str(),
                            std::strerror(errno));
        return false;
    }
    sockaddr_storage bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0) {
        if (bound.ss_family == AF_INET)
            port_ = ntohs(
                reinterpret_cast<sockaddr_in *>(&bound)->sin_port);
        else if (bound.ss_family == AF_INET6)
            port_ = ntohs(
                reinterpret_cast<sockaddr_in6 *>(&bound)->sin6_port);
    }
    socket_ = Socket(fd);
    return true;
}

Socket
Listener::accept()
{
    if (!socket_.valid())
        return Socket();
    for (;;) {
        int fd = ::accept(socket_.fd(), nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno != EINTR)
            return Socket();
    }
}

void
Listener::close()
{
    socket_.close();
    if (!unixPath_.empty()) {
        ::unlink(unixPath_.c_str());
        unixPath_.clear();
    }
}

Socket
connectTo(const std::string &address, std::string *error)
{
    Address parsed = parseAddress(address);
    if (!parsed.ok) {
        if (error)
            *error = parsed.error;
        return Socket();
    }

    if (parsed.isUnix) {
        sockaddr_un addr;
        if (!fillUnixAddr(parsed.path, &addr, error))
            return Socket();
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0 ||
            ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            if (error)
                *error = format("cannot connect to '%s': %s",
                                parsed.path.c_str(),
                                std::strerror(errno));
            if (fd >= 0)
                ::close(fd);
            return Socket();
        }
        return Socket(fd);
    }

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *info = nullptr;
    int rc = ::getaddrinfo(parsed.host.c_str(), parsed.port.c_str(),
                           &hints, &info);
    if (rc != 0) {
        if (error)
            *error = format("cannot resolve '%s:%s': %s",
                            parsed.host.c_str(), parsed.port.c_str(),
                            ::gai_strerror(rc));
        return Socket();
    }
    int fd = -1;
    for (addrinfo *ai = info; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(info);
    if (fd < 0) {
        if (error)
            *error = format("cannot connect to '%s:%s': %s",
                            parsed.host.c_str(), parsed.port.c_str(),
                            std::strerror(errno));
        return Socket();
    }
    return Socket(fd);
}

bool
LineChannel::readLine(std::string *line)
{
    timedOut_ = false;
    for (;;) {
        size_t newline = buffer_.find('\n', scanned_);
        if (newline != std::string::npos) {
            line->assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            scanned_ = 0;
            return true;
        }
        scanned_ = buffer_.size();
        char chunk[4096];
        long got = socket_.read(chunk, sizeof(chunk));
        if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // A read timeout (Socket::setReadTimeout) expired: the
            // peer stalled mid-line. Keep the partial line buffered
            // and let the caller decide - this is not end of stream.
            timedOut_ = true;
            return false;
        }
        if (got <= 0) {
            // EOF/error: surface a final unterminated fragment once.
            if (!buffer_.empty()) {
                line->assign(buffer_);
                buffer_.clear();
                scanned_ = 0;
                return true;
            }
            return false;
        }
        buffer_.append(chunk, static_cast<size_t>(got));
    }
}

bool
LineChannel::writeLine(const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    return socket_.writeAll(framed.data(), framed.size());
}

} // namespace net
} // namespace hilp
