#include "timetable.hh"

#include "support/logging.hh"

namespace hilp {
namespace cp {

Timetable::Timetable(const Model &model)
    : model_(model),
      horizon_(model.horizon())
{
    hilp_assert(horizon_ > 0);
    usage_.assign(model.numResources(),
                  std::vector<Units>(horizon_, 0));
    busy_.assign(model.numGroups(),
                 std::vector<uint8_t>(horizon_, 0));
    capUnits_.reserve(model.numResources());
    for (int r = 0; r < model.numResources(); ++r)
        capUnits_.push_back(toUnits(model.capacity(r)));
}

Time
Timetable::firstConflict(const Mode &mode, Time start) const
{
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        const auto &busy = busy_[mode.group];
        for (Time s = start; s < end; ++s)
            if (busy[s])
                return s;
    }
    for (int r = 0; r < model_.numResources(); ++r) {
        Units u = toUnits(mode.usage[r]);
        if (u <= 0)
            continue;
        Units limit = capUnits_[r] + kCapacitySlack - u;
        const auto &profile = usage_[r];
        for (Time s = start; s < end; ++s)
            if (profile[s] > limit)
                return s;
    }
    return -1;
}

bool
Timetable::fits(const Mode &mode, Time start) const
{
    hilp_assert(start >= 0);
    if (start + mode.duration > horizon_)
        return false;
    if (mode.duration == 0)
        return true;
    return firstConflict(mode, start) == -1;
}

Time
Timetable::earliestStart(const Mode &mode, Time est) const
{
    hilp_assert(est >= 0);
    if (mode.duration == 0)
        return est <= horizon_ ? est : -1;
    Time start = est;
    while (start + mode.duration <= horizon_) {
        Time conflict = firstConflict(mode, start);
        if (conflict < 0)
            return start;
        // Jump past the conflicting step: no window containing it
        // can be feasible.
        start = conflict + 1;
    }
    return -1;
}

void
Timetable::place(const Mode &mode, Time start)
{
    hilp_assert(start >= 0 && start + mode.duration <= horizon_);
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        auto &busy = busy_[mode.group];
        for (Time s = start; s < end; ++s) {
            hilp_assert(!busy[s]);
            busy[s] = 1;
        }
    }
    for (int r = 0; r < model_.numResources(); ++r) {
        Units u = toUnits(mode.usage[r]);
        if (u == 0)
            continue;
        auto &profile = usage_[r];
        for (Time s = start; s < end; ++s)
            profile[s] += u;
    }
}

void
Timetable::remove(const Mode &mode, Time start)
{
    hilp_assert(start >= 0 && start + mode.duration <= horizon_);
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        auto &busy = busy_[mode.group];
        for (Time s = start; s < end; ++s) {
            hilp_assert(busy[s]);
            busy[s] = 0;
        }
    }
    for (int r = 0; r < model_.numResources(); ++r) {
        Units u = toUnits(mode.usage[r]);
        if (u == 0)
            continue;
        auto &profile = usage_[r];
        // Integer subtraction is exact: a place/remove round trip
        // restores the profile bit-for-bit, with no drift to clamp.
        for (Time s = start; s < end; ++s)
            profile[s] -= u;
    }
}

} // namespace cp
} // namespace hilp
