/**
 * @file
 * Unit tests for the SolveMemo's byte-accounted LRU bound: the cap
 * is respected, eviction is least-recently-used (lookups refresh
 * recency), evicted keys recompute (miss, then re-insert fine), and
 * the unbounded default retains everything as before.
 */

#include <gtest/gtest.h>

#include "hilp/engine.hh"

namespace hilp {
namespace {

EvalResult
resultWithMakespan(double makespan_s)
{
    EvalResult result;
    result.ok = true;
    result.makespanS = makespan_s;
    result.gap = 0.05;
    return result;
}

TEST(SolveMemoLru, UnboundedByDefaultRetainsEverything)
{
    SolveMemo memo;
    EXPECT_EQ(memo.maxBytes(), 0u);
    for (uint64_t key = 0; key < 512; ++key)
        memo.insert(key, resultWithMakespan(1.0 + key));
    EXPECT_EQ(memo.entries(), 512u);
    EXPECT_EQ(memo.evictions(), 0);
}

TEST(SolveMemoLru, ByteCapIsNeverExceeded)
{
    size_t one = SolveMemo::resultFootprintBytes(
        resultWithMakespan(1.0));
    SolveMemo memo(4 * one);
    for (uint64_t key = 0; key < 64; ++key) {
        memo.insert(key, resultWithMakespan(1.0 + key));
        EXPECT_LE(memo.bytes(), memo.maxBytes())
            << "after insert " << key;
    }
    EXPECT_EQ(memo.entries(), 4u);
    EXPECT_EQ(memo.evictions(), 60);
}

TEST(SolveMemoLru, EvictionIsLeastRecentlyUsed)
{
    size_t one = SolveMemo::resultFootprintBytes(
        resultWithMakespan(1.0));
    SolveMemo memo(3 * one);
    memo.insert(1, resultWithMakespan(1.0));
    memo.insert(2, resultWithMakespan(2.0));
    memo.insert(3, resultWithMakespan(3.0));

    // Touch key 1: key 2 becomes the least recently used.
    EvalResult out;
    ASSERT_TRUE(memo.lookup(1, &out));

    memo.insert(4, resultWithMakespan(4.0));
    EXPECT_TRUE(memo.lookup(1, &out));
    EXPECT_FALSE(memo.lookup(2, &out)) << "LRU key should be evicted";
    EXPECT_TRUE(memo.lookup(3, &out));
    EXPECT_TRUE(memo.lookup(4, &out));
}

TEST(SolveMemoLru, EvictedKeysRecomputeAndReinsert)
{
    size_t one = SolveMemo::resultFootprintBytes(
        resultWithMakespan(1.0));
    SolveMemo memo(2 * one);
    memo.insert(1, resultWithMakespan(1.0));
    memo.insert(2, resultWithMakespan(2.0));
    memo.insert(3, resultWithMakespan(3.0)); // Evicts key 1.

    EvalResult out;
    EXPECT_FALSE(memo.lookup(1, &out));
    // The "recompute" result lands like any fresh insert.
    memo.insert(1, resultWithMakespan(1.5));
    ASSERT_TRUE(memo.lookup(1, &out));
    EXPECT_DOUBLE_EQ(out.makespanS, 1.5);
    EXPECT_LE(memo.bytes(), memo.maxBytes());
}

TEST(SolveMemoLru, CacheHitStillZeroesEffortCounters)
{
    SolveMemo memo(1 << 20);
    EvalResult result = resultWithMakespan(2.0);
    result.totalNodes = 1234;
    result.solves = 3;
    memo.insert(7, result);

    EvalResult out;
    ASSERT_TRUE(memo.lookup(7, &out));
    EXPECT_TRUE(out.cacheHit);
    EXPECT_EQ(out.totalNodes, 0);
    EXPECT_EQ(out.solves, 0);
}

TEST(SolveMemoLru, SetMaxBytesEvictsImmediately)
{
    size_t one = SolveMemo::resultFootprintBytes(
        resultWithMakespan(1.0));
    SolveMemo memo;
    for (uint64_t key = 0; key < 10; ++key)
        memo.insert(key, resultWithMakespan(1.0 + key));
    EXPECT_EQ(memo.entries(), 10u);

    memo.setMaxBytes(2 * one);
    EXPECT_LE(memo.bytes(), memo.maxBytes());
    EXPECT_EQ(memo.entries(), 2u);
}

TEST(SolveMemoLru, OversizedResultIsNotRetained)
{
    EvalResult result = resultWithMakespan(2.0);
    size_t one = SolveMemo::resultFootprintBytes(result);
    SolveMemo memo(one / 2);
    memo.insert(1, result);
    EXPECT_EQ(memo.entries(), 0u);
    EXPECT_EQ(memo.bytes(), 0u);

    EvalResult out;
    EXPECT_FALSE(memo.lookup(1, &out));
}

TEST(SolveMemoLru, ClearDropsEntriesButKeepsAccounting)
{
    SolveMemo memo(1 << 20);
    memo.insert(1, resultWithMakespan(1.0));
    EvalResult out;
    ASSERT_TRUE(memo.lookup(1, &out));
    int64_t hits = memo.hits();

    memo.clear();
    EXPECT_EQ(memo.entries(), 0u);
    EXPECT_EQ(memo.bytes(), 0u);
    EXPECT_FALSE(memo.lookup(1, &out));
    EXPECT_EQ(memo.hits(), hits);
}

} // anonymous namespace
} // namespace hilp
