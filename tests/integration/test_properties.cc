/**
 * @file
 * Cross-module property tests: invariants that must hold for any
 * workload/SoC combination, exercised over seeded synthetic
 * workloads and a grid of SoC shapes.
 */

#include <gtest/gtest.h>

#include "baselines/gables.hh"
#include "baselines/multiamdahl.hh"
#include "dse/explore.hh"
#include "hilp/builder.hh"
#include "hilp/engine.hh"
#include "workload/rodinia.hh"
#include "workload/synthetic.hh"

namespace hilp {
namespace {

workload::Workload
syntheticWorkload(uint64_t seed, int apps = 4)
{
    workload::SyntheticOptions options;
    options.numApps = apps;
    options.seed = seed;
    return makeSyntheticWorkload(options);
}

arch::SocConfig
mediumSoc()
{
    arch::SocConfig soc;
    soc.cpuCores = 2;
    soc.gpuSms = 16;
    return soc;
}

EngineOptions
fastEngine()
{
    EngineOptions options = EngineOptions::explorationMode();
    options.solver.maxSeconds = 2.0;
    options.solver.maxNodes = 50000;
    return options;
}

/** Per-seed property bundle over synthetic workloads. */
class SyntheticProperties : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SyntheticProperties, WlpExtremesBracketHilp)
{
    workload::Workload wl = syntheticWorkload(GetParam());
    ProblemSpec spec =
        buildProblem(wl, mediumSoc(), arch::Constraints{});
    ASSERT_EQ(spec.validate(), "");

    baselines::MaResult ma = baselines::evaluateMultiAmdahl(spec);
    EvalResult hilp = evaluate(spec, fastEngine());
    EvalResult gables = baselines::evaluateGables(spec, fastEngine());
    ASSERT_TRUE(ma.ok);
    ASSERT_TRUE(hilp.ok);
    ASSERT_TRUE(gables.ok);

    // MA serializes everything: it can never beat HILP by more than
    // HILP's discretization rounding (one step per phase).
    double slack = hilp.stepS * spec.numPhases();
    EXPECT_GE(ma.makespanS + slack, hilp.makespanS);
    // Gables relaxes HILP (drops dependencies and power): it cannot
    // be slower, modulo its own rounding slack.
    EXPECT_LE(gables.makespanS,
              hilp.makespanS + gables.stepS * spec.numPhases());
    // WLP ordering: 1 = MA <= HILP <= Gables (+ small tolerance).
    EXPECT_GE(hilp.averageWlp, 1.0 - 1e-9);
    EXPECT_GE(gables.averageWlp, hilp.averageWlp - 0.35);
}

TEST_P(SyntheticProperties, LowerBoundNeverExceedsMakespan)
{
    workload::Workload wl = syntheticWorkload(GetParam());
    ProblemSpec spec =
        buildProblem(wl, mediumSoc(), arch::Constraints{});
    EvalResult result = evaluate(spec, fastEngine());
    ASSERT_TRUE(result.ok);
    EXPECT_LE(result.lowerBoundS, result.makespanS + 1e-9);
    EXPECT_GE(result.gap, 0.0);
    EXPECT_LE(result.gap, 1.0);
}

TEST_P(SyntheticProperties, SpeedupNeverExceedsLowerBoundPotential)
{
    workload::Workload wl = syntheticWorkload(GetParam());
    ProblemSpec spec =
        buildProblem(wl, mediumSoc(), arch::Constraints{});
    EvalResult result = evaluate(spec, fastEngine());
    ASSERT_TRUE(result.ok);
    // The makespan can never beat the single longest phase executed
    // on its fastest unit.
    double longest_min_phase = 0.0;
    for (const AppSpec &app : spec.apps) {
        for (const PhaseSpec &phase : app.phases) {
            double best = 1e300;
            for (const UnitOption &option : phase.options)
                best = std::min(best, option.timeS);
            longest_min_phase = std::max(longest_min_phase, best);
        }
    }
    EXPECT_GE(result.makespanS + 1e-9, longest_min_phase);
}

TEST_P(SyntheticProperties, MorePowerNeverHurts)
{
    workload::Workload wl = syntheticWorkload(GetParam());
    arch::SocConfig soc = mediumSoc();
    arch::Constraints tight;
    tight.powerBudgetW = 40.0;
    arch::Constraints loose;
    loose.powerBudgetW = 600.0;
    ProblemSpec tight_spec = buildProblem(wl, soc, tight);
    if (!tight_spec.validate().empty())
        GTEST_SKIP() << "workload unschedulable at 40 W";
    EvalResult constrained = evaluate(tight_spec, fastEngine());
    EvalResult unconstrained =
        evaluate(buildProblem(wl, soc, loose), fastEngine());
    ASSERT_TRUE(constrained.ok);
    ASSERT_TRUE(unconstrained.ok);
    // Allow heuristic noise of one coarse step in each direction.
    double slack =
        std::max(constrained.stepS, unconstrained.stepS) * 2.0;
    EXPECT_LE(unconstrained.lowerBoundS,
              constrained.makespanS + slack);
}

TEST_P(SyntheticProperties, GablesWlpIsHighestOrClose)
{
    workload::Workload wl = syntheticWorkload(GetParam());
    ProblemSpec spec =
        buildProblem(wl, mediumSoc(), arch::Constraints{});
    baselines::MaResult ma = baselines::evaluateMultiAmdahl(spec);
    ASSERT_TRUE(ma.ok);
    EXPECT_DOUBLE_EQ(ma.averageWlp(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticProperties,
                         ::testing::Range<uint64_t>(1, 9));

/** SoC-shape grid properties on the Default Rodinia workload. */
class SocShapeProperties
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(SocShapeProperties, SchedulesAreProducedAndBounded)
{
    auto [cpus, sms] = GetParam();
    workload::Workload wl =
        workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig soc;
    soc.cpuCores = cpus;
    soc.gpuSms = sms;
    ProblemSpec spec = buildProblem(wl, soc, arch::Constraints{});
    EvalResult result = evaluate(spec, fastEngine());
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.makespanS, 0.0);
    EXPECT_LE(result.lowerBoundS, result.makespanS + 1e-9);
    EXPECT_GE(result.averageWlp, 1.0 - 1e-9);
    EXPECT_LE(result.averageWlp, 30.0);
}

TEST_P(SocShapeProperties, AcceleratorsNeverSlowTheWorkloadDown)
{
    auto [cpus, sms] = GetParam();
    if (sms == 0)
        GTEST_SKIP();
    workload::Workload wl =
        workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig with_gpu;
    with_gpu.cpuCores = cpus;
    with_gpu.gpuSms = sms;
    arch::SocConfig without_gpu;
    without_gpu.cpuCores = cpus;
    EvalResult with_result = evaluate(
        buildProblem(wl, with_gpu, arch::Constraints{}), fastEngine());
    EvalResult without_result =
        evaluate(buildProblem(wl, without_gpu, arch::Constraints{}),
                 fastEngine());
    ASSERT_TRUE(with_result.ok);
    ASSERT_TRUE(without_result.ok);
    double slack = (with_result.stepS + without_result.stepS) * 4.0;
    EXPECT_LE(with_result.makespanS,
              without_result.makespanS + slack);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SocShapeProperties,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(0, 16, 64)));

/**
 * Amdahl saturation property (Figure 5a's mechanism): on the Default
 * workload with a 16-SM GPU, going from 1 to 4 CPU cores must
 * improve performance noticeably.
 */
TEST(ValidationProperties, CpuCoresUnlockAcceleratorUtilization)
{
    workload::Workload wl =
        workload::makeWorkload(workload::Variant::Default);
    double makespans[2];
    int idx = 0;
    for (int cpus : {1, 4}) {
        arch::SocConfig soc;
        soc.cpuCores = cpus;
        soc.gpuSms = 16;
        EvalResult result = evaluate(
            buildProblem(wl, soc, arch::Constraints{}), fastEngine());
        ASSERT_TRUE(result.ok);
        makespans[idx++] = result.makespanS;
    }
    EXPECT_LT(makespans[1], makespans[0] * 0.85);
}

/** Memory-wall property (Figure 5b's mechanism). */
TEST(ValidationProperties, BandwidthCapDegradesPerformance)
{
    workload::Workload wl =
        workload::makeWorkload(workload::Variant::Optimized);
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 64;
    double makespans[2];
    int idx = 0;
    for (double bw : {50.0, 800.0}) {
        arch::Constraints constraints;
        constraints.memory.bandwidthGBs = bw;
        EvalResult result = evaluate(buildProblem(wl, soc, constraints),
                                     fastEngine());
        ASSERT_TRUE(result.ok);
        makespans[idx++] = result.makespanS;
    }
    EXPECT_GT(makespans[0], makespans[1]);
}

/** Dark-silicon property (Figure 5c's mechanism). */
TEST(ValidationProperties, PowerCapDegradesPerformance)
{
    workload::Workload wl =
        workload::makeWorkload(workload::Variant::Optimized);
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 64;
    double makespans[2];
    int idx = 0;
    for (double watts : {50.0, 600.0}) {
        arch::Constraints constraints;
        constraints.powerBudgetW = watts;
        EvalResult result = evaluate(buildProblem(wl, soc, constraints),
                                     fastEngine());
        ASSERT_TRUE(result.ok);
        makespans[idx++] = result.makespanS;
    }
    EXPECT_GT(makespans[0], makespans[1]);
}

} // anonymous namespace
} // namespace hilp
