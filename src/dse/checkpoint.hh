/**
 * @file
 * Crash-safe checkpointing for DSE sweeps.
 *
 * A sweep over hundreds of configurations can take hours; an
 * interrupted run (crash, OOM kill, preemption) must not discard the
 * points it already solved. The SweepCheckpoint appends one JSONL
 * record per completed design point - keyed by the lowered instance's
 * ProblemSpec::fingerprint(), the configuration name, and the model
 * kind - and, when reopened with resume, serves those points back so
 * exploreSpace skips the work. A record is flushed as soon as its
 * point completes, so a SIGKILL loses at most the in-flight points;
 * the loader skips and counts malformed records - a torn final line
 * from an interrupted write, but also damaged interior lines, which
 * matter once a coordinator merges many workers' streams into one
 * ledger - and reports the total via dropped().
 *
 * Resumed points restore the certified result and telemetry totals;
 * HILP records additionally persist their schedule, so a resumed
 * point can still seed the sweep's warm-start chains (see
 * lookupSchedule). A record without a schedule resumes fine - the
 * chain just stays cold, costing effort, never correctness.
 */

#ifndef HILP_DSE_CHECKPOINT_HH
#define HILP_DSE_CHECKPOINT_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

#include "explore.hh"
#include "hilp/schedule.hh"
#include "support/json.hh"

namespace hilp {
namespace dse {

/**
 * The stable identity of one evaluated point across runs: the
 * lowered instance's fingerprint, the configuration name, and the
 * evaluating model. The model kind matters because MA/Gables/HILP
 * share lowered specs but produce different results.
 */
uint64_t checkpointKey(uint64_t fingerprint,
                       const std::string &config_name, ModelKind kind);

/**
 * Encode one completed point as a record object: the JSONL
 * checkpoint format, doubling as the hilpd wire format for streamed
 * sweep results (so a stream capture is a valid --resume file). A
 * non-null schedule is embedded so warm-start chains survive a
 * resume.
 */
Json pointRecordJson(uint64_t key, ModelKind kind,
                     const DsePoint &point,
                     const Schedule *schedule = nullptr);

/**
 * Decode one record line into (key, point[, schedule]). Returns
 * false on any structural problem - most importantly the torn final
 * line a SIGKILL can leave in a checkpoint. A malformed embedded
 * schedule degrades to *has_schedule == false rather than dropping
 * the record. Structural fields derived from the config being
 * evaluated (config, area, mix) and the resumed flag are the
 * caller's to fill. A non-null config_name receives the record's
 * "config" label - the handle a coordinator merges worker-submitted
 * records by.
 */
bool parsePointRecord(const std::string &line, uint64_t *key,
                      DsePoint *point, Schedule *schedule,
                      bool *has_schedule,
                      std::string *config_name = nullptr);

/**
 * A JSONL checkpoint of completed design points. Thread-safe: sweep
 * workers record points concurrently. One instance may span several
 * exploreSpace calls (e.g. the MA, Gables, and HILP sweeps of one
 * figure) - keys keep the models apart.
 */
class SweepCheckpoint
{
  public:
    SweepCheckpoint() = default;
    ~SweepCheckpoint();

    SweepCheckpoint(const SweepCheckpoint &) = delete;
    SweepCheckpoint &operator=(const SweepCheckpoint &) = delete;

    /**
     * Open the checkpoint for appending. With resume, existing
     * records are loaded first (a missing file is an empty resume,
     * not an error); without it the file is truncated. Returns false
     * and fills *error when the file cannot be opened or created.
     */
    bool open(const std::string &path, bool resume,
              std::string *error = nullptr);

    /** Points loaded from a previous run at open() time. */
    size_t loaded() const;

    /**
     * Malformed records skipped at open() time: the torn final line
     * of an interrupted run, or damaged interior lines in a merged
     * ledger. Callers surface this in their resume summary.
     */
    size_t dropped() const;

    /**
     * fsync the file after every record() flush. Off by default (the
     * historical durability: flush-per-point). A coordinator's merged
     * ledger turns it on so an acknowledged submit survives a host
     * crash, not just a process crash.
     */
    void setFsync(bool on);

    /**
     * Serve a previously completed point. On a hit *out is the
     * restored point with resumed set; structural fields (config,
     * area, mix) are the caller's to fill, since they derive from the
     * config being evaluated anyway.
     */
    bool lookup(uint64_t key, DsePoint *out) const;

    /**
     * Append a completed point and flush it to disk. Safe to call
     * concurrently; each record lands as one complete line. A
     * non-null schedule is persisted with the record so a resumed
     * sweep can rehydrate its warm-start chains (exploreSpace passes
     * the HILP schedule; the analytic models pass null).
     */
    void record(uint64_t key, ModelKind kind, const DsePoint &point,
                const Schedule *schedule = nullptr);

    /**
     * The schedule persisted with a resumed point, if its record
     * carried one. Returns false (leaving *out untouched) otherwise.
     */
    bool lookupSchedule(uint64_t key, Schedule *out) const;

    /** Close the underlying file early (the destructor also does). */
    void close();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, DsePoint> entries_;
    /** Schedules restored from records that carried one. */
    std::unordered_map<uint64_t, Schedule> schedules_;
    std::FILE *file_ = nullptr;
    size_t dropped_ = 0;
    bool fsync_ = false;
};

} // namespace dse
} // namespace hilp

#endif // HILP_DSE_CHECKPOINT_HH
