#include "solver.hh"

#include <algorithm>
#include <chrono>

#include "list_scheduler.hh"
#include "lns.hh"
#include "search.hh"
#include "support/hash.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace hilp {
namespace cp {

const char *
toString(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Optimal:
        return "optimal";
      case SolveStatus::NearOptimal:
        return "near-optimal";
      case SolveStatus::Feasible:
        return "feasible";
      case SolveStatus::Infeasible:
        return "infeasible";
      case SolveStatus::NoSolution:
        return "no-solution";
    }
    return "unknown";
}

namespace {

/**
 * The heuristic seed every stochastic component derives from: the
 * plain option seed when no salt is set (the historical behavior),
 * otherwise the seed mixed with the salt so distinct instances and
 * retry attempts sharing a seed take distinct trajectories.
 */
uint64_t
saltedSeed(const SolverOptions &options)
{
    if (options.seedSalt == 0)
        return options.seed;
    Hasher hasher;
    hasher.u64(options.seed);
    hasher.u64(options.seedSalt);
    return hasher.digest();
}

} // anonymous namespace

double
Result::gap() const
{
    if (makespan <= 0)
        return 0.0;
    return static_cast<double>(makespan - lowerBound) /
           static_cast<double>(makespan);
}

Result
Solver::solve(const Model &model, const ScheduleVec *hint) const
{
    auto start_time = std::chrono::steady_clock::now();
    trace::Span solve_span("cp.solve",
                           trace::Arg::intArg("tasks", model.numTasks()));

    std::string problem = model.validate();
    if (!problem.empty())
        fatal("invalid scheduling model: %s", problem.c_str());

    Result result;

    // Lower bounds first: they prune the greedy/search work.
    {
        TRACE_SPAN("cp.bounds");
        result.stats.bounds =
            computeLowerBounds(model, options_.useLpBound);
    }
    result.lowerBound = result.stats.bounds.best();

    // An external hint (e.g. a schedule transferred from a similar
    // problem) participates as an incumbent candidate when feasible.
    Time hint_makespan = 0;
    bool hint_ok = false;
    if (hint && checkSchedule(model, *hint).empty()) {
        hint_ok = true;
        hint_makespan = hint->makespan(model);
        result.stats.hintAccepted = true;
        result.stats.hintMakespan = hint_makespan;
    }

    // Greedy warm start, refined by priority-order hill climbing.
    const uint64_t heuristic_seed = saltedSeed(options_);
    ListResult greedy;
    {
        TRACE_SPAN("cp.greedy");
        greedy = bestGreedy(model, options_.greedyRestarts,
                            heuristic_seed);
        if (greedy.feasible) {
            // Skip the refinement when the greedy (or the hint) is
            // already provably within the target gap.
            Time incumbent = hint_ok
                ? std::min(greedy.makespan, hint_makespan)
                : greedy.makespan;
            double greedy_gap = incumbent > 0
                ? static_cast<double>(incumbent - result.lowerBound) /
                  static_cast<double>(incumbent)
                : 0.0;
            // Past the deadline the cheap greedy incumbent is all we
            // spend: incumbent refinement and the tree search are
            // skipped.
            if (greedy_gap > options_.targetGap &&
                std::chrono::steady_clock::now() < options_.deadline) {
                if (options_.lns) {
                    // Destroy/repair LNS around the best incumbent
                    // available (greedy or hint); monotone, so the
                    // result replaces the greedy unconditionally.
                    LnsOptions lns;
                    lns.iterations = options_.lnsIterations;
                    lns.maxSeconds = options_.maxSeconds * 0.25;
                    lns.deadline = options_.deadline;
                    lns.seed = heuristic_seed + 1;
                    lns.polishNodes = options_.lnsPolishNodes;
                    lns.targetGap = options_.targetGap;
                    lns.lowerBound = result.lowerBound;
                    lns.useNogoods = options_.useNogoods;
                    lns.packedLayout = options_.packedLayout;
                    const ScheduleVec &seed_schedule =
                        hint_ok && hint_makespan < greedy.makespan
                            ? *hint
                            : greedy.schedule;
                    LnsResult improved =
                        lnsImprove(model, seed_schedule, lns);
                    greedy.schedule = improved.schedule;
                    greedy.makespan = improved.makespan;
                    result.stats.lnsIterationsRun =
                        improved.iterations;
                    result.stats.lnsImprovements =
                        improved.improvements;
                    result.stats.lnsTrajectoryDigest =
                        improved.trajectoryDigest;
                    metrics::counter("cp.lns.iterations")
                        .add(improved.iterations);
                    metrics::counter("cp.lns.improvements")
                        .add(improved.improvements);
                } else {
                    greedy = improveGreedy(model, greedy,
                                           options_.lnsIterations,
                                           heuristic_seed + 1);
                }
            }
            result.stats.greedyMakespan = greedy.makespan;
        }
    }

    // Branch and bound, warm-started with the best incumbent.
    const ScheduleVec *warm = nullptr;
    if (greedy.feasible &&
        (!hint_ok || greedy.makespan <= hint_makespan))
        warm = &greedy.schedule;
    else if (hint_ok)
        warm = hint;

    SearchLimits limits;
    limits.maxNodes = options_.maxNodes;
    limits.maxSeconds = options_.maxSeconds;
    limits.deadline = options_.deadline;
    limits.targetGap = options_.targetGap;
    limits.lowerBound = result.lowerBound;
    limits.energeticReasoning = options_.energeticReasoning;
    limits.deterministic = options_.deterministicSearch;
    limits.splitDepth = options_.splitDepth;
    limits.useNogoods = options_.useNogoods;
    limits.nogoodCapacity = options_.nogoodCapacity;
    limits.packedLayout = options_.packedLayout;

    // threads == 0 means "borrow what the machine has to spare":
    // the caller's own thread is implicitly budgeted, extra workers
    // come from the process-wide budget and go back when the search
    // finishes. Non-blocking, so a solve inside a busy DSE sweep
    // degrades to serial instead of oversubscribing.
    ThreadBudget::Lease extra_lease;
    if (options_.threads == 0) {
        ThreadBudget &budget = ThreadBudget::global();
        extra_lease = budget.lease(budget.total() - 1);
        limits.threads = 1 + extra_lease.count();
    } else {
        limits.threads = std::max(1, options_.threads);
    }

    // An already-expired deadline still returns the incumbent (and
    // its certified bound): one node records the warm start and stops.
    if (std::chrono::steady_clock::now() >= options_.deadline)
        limits.maxNodes = 1;

    SearchResult search = branchAndBound(model, warm, limits);
    extra_lease.reset();

    result.stats.nodes = search.nodes;
    result.stats.backtracks = search.backtracks;
    result.stats.solutions = search.solutions;
    result.stats.exhausted = search.exhausted;
    result.stats.propagators = search.propagators;
    result.stats.searchThreads = search.threadsUsed;
    result.stats.steals = search.steals;
    result.stats.subproblems = search.subproblems;
    result.stats.nogoodHits = search.nogoodHits;
    result.stats.nogoodsRecorded = search.nogoodsRecorded;
    result.stats.scratchBytes = search.scratchBytes;
    result.stats.arenaHighWater = search.arenaHighWater;
    result.stats.arenaRewinds = search.arenaRewinds;

    if (search.foundSolution) {
        result.schedule = search.best;
        result.makespan = search.bestMakespan;
        if (search.exhausted) {
            // The tree is exhausted: the incumbent is the optimum and
            // the lower bound can be promoted to it.
            result.lowerBound = result.makespan;
        }
        if (result.lowerBound >= result.makespan) {
            result.lowerBound = result.makespan;
            result.status = SolveStatus::Optimal;
        } else if (result.gap() <= options_.targetGap) {
            result.status = SolveStatus::NearOptimal;
        } else {
            result.status = SolveStatus::Feasible;
        }
        // Self-check: a constraint violation here is a solver bug.
        std::string violation = checkSchedule(model, result.schedule);
        if (!violation.empty())
            panic("solver produced an invalid schedule: %s",
                  violation.c_str());
    } else if (search.exhausted) {
        result.status = SolveStatus::Infeasible;
    } else {
        result.status = SolveStatus::NoSolution;
    }

    result.stats.seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start_time).count();

    metrics::counter("cp.solves").add(1);
    metrics::histogram("cp.solve_us")
        .record(static_cast<int64_t>(result.stats.seconds * 1e6));
    solve_span.arg(trace::Arg::strArg("status", toString(result.status)));
    solve_span.arg(trace::Arg::intArg("makespan", result.makespan));
    return result;
}

} // namespace cp
} // namespace hilp
