#include "flight_recorder.hh"

#include <algorithm>

namespace hilp {
namespace service {

Json
RequestSummary::toJson() const
{
    Json out = Json::object();
    out.set("trace_id",
            Json::number(static_cast<int64_t>(traceId)));
    out.set("op", Json::string(op));
    if (!detail.empty())
        out.set("detail", Json::string(detail));
    out.set("configs",
            Json::number(static_cast<int64_t>(configs)));
    out.set("points", Json::number(static_cast<int64_t>(points)));
    out.set("ok", Json::boolean(ok));
    out.set("slow", Json::boolean(slow));
    if (!error.empty())
        out.set("error", Json::string(error));
    out.set("queue_wait_us", Json::number(queueWaitUs));
    out.set("solve_us", Json::number(solveUs));
    out.set("serialize_us", Json::number(serializeUs));
    out.set("total_us", Json::number(totalUs));
    return out;
}

FlightRecorder::FlightRecorder(size_t capacity, size_t shards)
{
    shards = std::max<size_t>(1, shards);
    size_t perShard =
        std::max<size_t>(1, (capacity + shards - 1) / shards);
    capacity_ = perShard * shards;
    shards_ = std::vector<Shard>(shards);
    for (Shard &shard : shards_)
        shard.ring.resize(perShard);
}

void
FlightRecorder::record(const RequestSummary &summary)
{
    Shard &shard = shards_[summary.traceId % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.ring[shard.head] = summary;
    shard.head = (shard.head + 1) % shard.ring.size();
    shard.count = std::min(shard.count + 1, shard.ring.size());
    ++shard.recorded;
}

std::vector<RequestSummary>
FlightRecorder::recent() const
{
    std::vector<RequestSummary> out;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        size_t n = shard.ring.size();
        // Oldest retained entry first: once full, that is the slot
        // `head` is about to overwrite.
        size_t start = shard.count < n ? 0 : shard.head;
        for (size_t k = 0; k < shard.count; ++k)
            out.push_back(shard.ring[(start + k) % n]);
    }
    std::sort(out.begin(), out.end(),
              [](const RequestSummary &a, const RequestSummary &b) {
                  return a.traceId < b.traceId;
              });
    return out;
}

size_t
FlightRecorder::size() const
{
    size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.count;
    }
    return total;
}

int64_t
FlightRecorder::recorded() const
{
    int64_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.recorded;
    }
    return total;
}

int64_t
FlightRecorder::slowCount() const
{
    int64_t slow = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (size_t k = 0; k < shard.count; ++k)
            if (shard.ring[k].slow)
                ++slow;
    }
    return slow;
}

Json
FlightRecorder::statsJson() const
{
    Json out = Json::object();
    out.set("capacity",
            Json::number(static_cast<int64_t>(capacity_)));
    out.set("occupancy", Json::number(static_cast<int64_t>(size())));
    out.set("recorded", Json::number(recorded()));
    out.set("slow", Json::number(slowCount()));
    return out;
}

} // namespace service
} // namespace hilp
