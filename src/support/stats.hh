/**
 * @file
 * Small statistics helpers used by the fitting code, the WLP metric,
 * and the experiment harnesses.
 */

#ifndef HILP_SUPPORT_STATS_HH
#define HILP_SUPPORT_STATS_HH

#include <cstddef>
#include <vector>

namespace hilp {

/** Arithmetic mean; returns 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Population variance; returns 0 for fewer than two samples. */
double variance(const std::vector<double> &xs);

/** Population standard deviation. */
double stddev(const std::vector<double> &xs);

/** Geometric mean; all inputs must be positive. */
double geomean(const std::vector<double> &xs);

/** Minimum; input must be non-empty. */
double minOf(const std::vector<double> &xs);

/** Maximum; input must be non-empty. */
double maxOf(const std::vector<double> &xs);

/** Sum of all elements. */
double sum(const std::vector<double> &xs);

/**
 * Pearson correlation coefficient of two equally-sized series;
 * returns 0 when either series is constant.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Result of an ordinary-least-squares fit y = slope * x + intercept.
 */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0, 1]. */
    double r2 = 0.0;
};

/**
 * Ordinary least-squares straight-line fit. Requires at least two
 * points; with exactly two points r2 is 1 by construction.
 */
LinearFit linearFit(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/**
 * Online accumulator for mean/min/max/stddev without storing samples.
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples seen so far. */
    size_t count() const { return count_; }

    /** Mean of the samples seen so far (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population standard deviation (0 for fewer than two samples). */
    double stddev() const;

    /** Smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace hilp

#endif // HILP_SUPPORT_STATS_HH
