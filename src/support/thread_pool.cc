#include "thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "logging.hh"
#include "metrics.hh"
#include "str.hh"
#include "trace.hh"

namespace hilp {

ThreadBudget::ThreadBudget(int total)
    : total_(total > 0
                 ? total
                 : static_cast<int>(std::max(
                       1u, std::thread::hardware_concurrency()))),
      available_(total_)
{}

ThreadBudget &
ThreadBudget::global()
{
    static ThreadBudget budget;
    return budget;
}

int
ThreadBudget::available() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return available_;
}

int
ThreadBudget::tryAcquire(int want)
{
    if (want <= 0)
        return 0;
    std::lock_guard<std::mutex> lock(mutex_);
    int granted = std::min(want, available_);
    available_ -= granted;
    return granted;
}

void
ThreadBudget::acquire(int n)
{
    if (n <= 0)
        return;
    hilp_assert(n <= total_);
    std::unique_lock<std::mutex> lock(mutex_);
    freed_.wait(lock, [this, n] { return available_ >= n; });
    available_ -= n;
}

void
ThreadBudget::release(int n)
{
    if (n <= 0)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        available_ += n;
        hilp_assert(available_ <= total_);
    }
    freed_.notify_all();
}

ThreadPool::ThreadPool(size_t num_threads, ThreadBudget *budget)
    : budget_(budget)
{
    if (num_threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = std::max(1u, hw);
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] {
            // Workers carry a stable name so sweep parallelism is
            // legible on the exported trace timeline.
            trace::setThreadName(format("worker-%zu", i));
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workAvailable_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    hilp_assert(task);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        hilp_assert(!shutdown_);
        queue_.push(std::move(task));
        ++inFlight_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr error = firstError_;
        firstError_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    // Dynamic work distribution: each worker claims the next index.
    auto next = std::make_shared<std::atomic<size_t>>(0);
    size_t spawn = std::min(n, workers_.size());
    for (size_t w = 0; w < spawn; ++w) {
        submit([next, n, &fn] {
            for (size_t i = (*next)++; i < n; i = (*next)++)
                fn(i);
        });
    }
    wait();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty()) {
                hilp_assert(shutdown_);
                return;
            }
            task = std::move(queue_.front());
            queue_.pop();
        }
        // Hold a budget slot only while the task runs: an idle
        // worker's slot is free for an inner solver to borrow, and a
        // borrowed-out slot delays the next outer task instead of
        // oversubscribing the machine.
        if (budget_)
            budget_->acquire(1);
        std::exception_ptr error;
        try {
            TRACE_SPAN("pool.task");
            metrics::counter("pool.tasks").add(1);
            task();
        } catch (...) {
            error = std::current_exception();
        }
        if (budget_)
            budget_->release(1);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (error && !firstError_)
                firstError_ = error;
            hilp_assert(inFlight_ > 0);
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace hilp
