/** @file Unit tests for the problem specification. */

#include <gtest/gtest.h>

#include "hilp/problem.hh"

namespace hilp {
namespace {

PhaseSpec
cpuPhase(const std::string &name, double time_s)
{
    PhaseSpec phase;
    phase.name = name;
    UnitOption option;
    option.label = "CPU";
    option.device = kCpuPool;
    option.timeS = time_s;
    option.cpuCores = 1.0;
    phase.options.push_back(option);
    return phase;
}

ProblemSpec
validSpec()
{
    ProblemSpec spec;
    spec.name = "test";
    spec.cpuCores = 2.0;
    AppSpec app;
    app.name = "a";
    app.phases = {cpuPhase("a0", 1.0), cpuPhase("a1", 2.0)};
    spec.apps.push_back(app);
    return spec;
}

TEST(ProblemSpecTest, ValidSpecPasses)
{
    EXPECT_EQ(validSpec().validate(), "");
}

TEST(ProblemSpecTest, NumPhases)
{
    ProblemSpec spec = validSpec();
    EXPECT_EQ(spec.numPhases(), 2);
    spec.apps.push_back(spec.apps[0]);
    EXPECT_EQ(spec.numPhases(), 4);
}

TEST(ProblemSpecTest, EmptyWorkloadRejected)
{
    ProblemSpec spec;
    EXPECT_NE(spec.validate(), "");
}

TEST(ProblemSpecTest, PhaseWithoutOptionsRejected)
{
    ProblemSpec spec = validSpec();
    spec.apps[0].phases[0].options.clear();
    EXPECT_NE(spec.validate().find("no unit options"),
              std::string::npos);
}

TEST(ProblemSpecTest, UnknownDeviceRejected)
{
    ProblemSpec spec = validSpec();
    spec.apps[0].phases[0].options[0].device = 3;
    EXPECT_NE(spec.validate().find("unknown device"),
              std::string::npos);
}

TEST(ProblemSpecTest, NegativeTimeRejected)
{
    ProblemSpec spec = validSpec();
    spec.apps[0].phases[0].options[0].timeS = -1.0;
    EXPECT_NE(spec.validate().find("negative"), std::string::npos);
}

TEST(ProblemSpecTest, UnschedulablePhaseRejected)
{
    ProblemSpec spec = validSpec();
    spec.powerBudgetW = 5.0;
    spec.apps[0].phases[0].options[0].powerW = 10.0;
    EXPECT_NE(spec.validate().find("budget"), std::string::npos);
}

TEST(ProblemSpecTest, BadDependencyEdgeRejected)
{
    ProblemSpec spec = validSpec();
    spec.apps[0].deps = {{0, 5}};
    EXPECT_NE(spec.validate().find("dependency"), std::string::npos);
}

TEST(ProblemSpecTest, SelfDependencyRejected)
{
    ProblemSpec spec = validSpec();
    spec.apps[0].deps = {{1, 1}};
    EXPECT_NE(spec.validate().find("dependency"), std::string::npos);
}

TEST(AppSpecTest, EffectiveDepsDefaultsToChain)
{
    AppSpec app;
    app.phases = {cpuPhase("p0", 1), cpuPhase("p1", 1),
                  cpuPhase("p2", 1)};
    auto deps = app.effectiveDeps();
    ASSERT_EQ(deps.size(), 2u);
    EXPECT_EQ(deps[0], std::make_pair(0, 1));
    EXPECT_EQ(deps[1], std::make_pair(1, 2));
}

TEST(AppSpecTest, ExplicitDepsOverrideChain)
{
    AppSpec app;
    app.phases = {cpuPhase("p0", 1), cpuPhase("p1", 1),
                  cpuPhase("p2", 1)};
    app.deps = {{0, 2}};
    auto deps = app.effectiveDeps();
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_EQ(deps[0], std::make_pair(0, 2));
}

TEST(AppSpecTest, IndependentPhasesHaveNoDeps)
{
    AppSpec app;
    app.phases = {cpuPhase("p0", 1), cpuPhase("p1", 1)};
    app.independentPhases = true;
    EXPECT_TRUE(app.effectiveDeps().empty());
    app.deps = {{0, 1}};
    EXPECT_TRUE(app.effectiveDeps().empty());
}

TEST(AppSpecTest, SinglePhaseChainIsEmpty)
{
    AppSpec app;
    app.phases = {cpuPhase("p0", 1)};
    EXPECT_TRUE(app.effectiveDeps().empty());
}

} // anonymous namespace
} // namespace hilp
