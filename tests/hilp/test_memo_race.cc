/**
 * @file
 * Concurrency regression test for SolveMemo::insert: two threads
 * racing equal-rank results into the same keys must always converge
 * on the same surviving entry, whatever the interleaving. Lives in
 * the concurrency binary so the TSan stage of scripts/check.sh
 * checks the locking as well as the determinism.
 */

#include <gtest/gtest.h>

#include <thread>

#include "hilp/engine.hh"

namespace hilp {
namespace {

TEST(SolveMemoRace, RacingEqualRankInsertsConvergeDeterministically)
{
    // Equal rank (ok, gap, degraded), different makespans: the
    // content tiebreak must pick the 2.0 result for every key in
    // every repetition, no matter which thread's insert lands first.
    EvalResult a;
    a.ok = true;
    a.makespanS = 2.0;
    a.gap = 0.05;
    EvalResult b = a;
    b.makespanS = 2.5;

    constexpr uint64_t kKeys = 64;
    for (int rep = 0; rep < 20; ++rep) {
        SolveMemo memo;
        std::thread ta([&] {
            for (uint64_t key = 0; key < kKeys; ++key)
                memo.insert(key, a);
        });
        std::thread tb([&] {
            for (uint64_t key = 0; key < kKeys; ++key)
                memo.insert(key, b);
        });
        ta.join();
        tb.join();
        for (uint64_t key = 0; key < kKeys; ++key) {
            EvalResult out;
            ASSERT_TRUE(memo.lookup(key, &out)) << "key " << key;
            EXPECT_DOUBLE_EQ(out.makespanS, 2.0) << "key " << key;
        }
    }
}

} // anonymous namespace
} // namespace hilp
