#include "thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "logging.hh"
#include "metrics.hh"
#include "str.hh"
#include "trace.hh"

namespace hilp {

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = std::max(1u, hw);
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] {
            // Workers carry a stable name so sweep parallelism is
            // legible on the exported trace timeline.
            trace::setThreadName(format("worker-%zu", i));
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workAvailable_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    hilp_assert(task);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        hilp_assert(!shutdown_);
        queue_.push(std::move(task));
        ++inFlight_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr error = firstError_;
        firstError_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    // Dynamic work distribution: each worker claims the next index.
    auto next = std::make_shared<std::atomic<size_t>>(0);
    size_t spawn = std::min(n, workers_.size());
    for (size_t w = 0; w < spawn; ++w) {
        submit([next, n, &fn] {
            for (size_t i = (*next)++; i < n; i = (*next)++)
                fn(i);
        });
    }
    wait();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty()) {
                hilp_assert(shutdown_);
                return;
            }
            task = std::move(queue_.front());
            queue_.pop();
        }
        std::exception_ptr error;
        try {
            TRACE_SPAN("pool.task");
            metrics::counter("pool.tasks").add(1);
            task();
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (error && !firstError_)
                firstError_ = error;
            hilp_assert(inFlight_ > 0);
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace hilp
