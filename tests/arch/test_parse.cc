/** @file Tests for SoC configuration-label parsing. */

#include <gtest/gtest.h>

#include "arch/parse.hh"

namespace hilp {
namespace arch {
namespace {

const std::vector<int> kPriority = {5, 3, 1, 0};

TEST(ParseSoc, FullLabel)
{
    SocParseResult r = parseSocName("(c4,g16,d2^16)", kPriority);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.config.cpuCores, 4);
    EXPECT_EQ(r.config.gpuSms, 16);
    ASSERT_EQ(r.config.dsas.size(), 2u);
    EXPECT_EQ(r.config.dsas[0].pes, 16);
    EXPECT_EQ(r.config.dsas[0].target, 5);
    EXPECT_EQ(r.config.dsas[1].target, 3);
    EXPECT_DOUBLE_EQ(r.config.dsaAdvantage, 4.0);
}

TEST(ParseSoc, RoundTripsThroughName)
{
    SocParseResult r = parseSocName("(c2,g64,d3^4)", kPriority);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.config.name(), "(c2,g64,d3^4)");
}

TEST(ParseSoc, ParenthesesAndWhitespaceOptional)
{
    SocParseResult bare = parseSocName("c1,g0,d0^0", kPriority);
    ASSERT_TRUE(bare.ok);
    EXPECT_EQ(bare.config.cpuCores, 1);
    EXPECT_TRUE(bare.config.dsas.empty());
    SocParseResult spaced =
        parseSocName(" ( c1 , g0 , d0^0 ) ", kPriority);
    ASSERT_TRUE(spaced.ok);
}

TEST(ParseSoc, DsaCountWithoutPesDefaultsToOne)
{
    SocParseResult r = parseSocName("(c1,g4,d2)", kPriority);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.config.dsas.size(), 2u);
    EXPECT_EQ(r.config.dsas[0].pes, 1);
}

TEST(ParseSoc, CustomAdvantage)
{
    SocParseResult r = parseSocName("(c1,g4,d1^4)", kPriority, 8.0);
    ASSERT_TRUE(r.ok);
    EXPECT_DOUBLE_EQ(r.config.dsaAdvantage, 8.0);
}

TEST(ParseSoc, RejectsWrongFieldCount)
{
    SocParseResult r = parseSocName("(c4,g16)", kPriority);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("three"), std::string::npos);
}

TEST(ParseSoc, RejectsWrongPrefixes)
{
    EXPECT_FALSE(parseSocName("(x4,g16,d0^0)", kPriority).ok);
    EXPECT_FALSE(parseSocName("(c4,x16,d0^0)", kPriority).ok);
}

TEST(ParseSoc, RejectsGarbageNumbers)
{
    EXPECT_FALSE(parseSocName("(c4a,g16,d0^0)", kPriority).ok);
    EXPECT_FALSE(parseSocName("(c4,g16,d1^x)", kPriority).ok);
    EXPECT_FALSE(parseSocName("(c-1,g16,d0^0)", kPriority).ok);
}

TEST(ParseSoc, RejectsZeroCpus)
{
    SocParseResult r = parseSocName("(c0,g16,d0^0)", kPriority);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("CPU"), std::string::npos);
}

TEST(ParseSoc, RejectsTooManyDsas)
{
    SocParseResult r = parseSocName("(c1,g0,d9^1)", kPriority);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("priority"), std::string::npos);
}

TEST(ParseSoc, RejectsZeroPeDsas)
{
    SocParseResult r = parseSocName("(c1,g0,d2^0)", kPriority);
    EXPECT_FALSE(r.ok);
}

TEST(ParseSoc, ParsedConfigsAreValid)
{
    for (const char *label : {"(c1,g0,d0^0)", "(c4,g64,d4^16)",
                              "(c2,g4,d1^1)"}) {
        SocParseResult r = parseSocName(label, kPriority);
        ASSERT_TRUE(r.ok) << label;
        EXPECT_TRUE(r.config.valid()) << label;
    }
}

} // anonymous namespace
} // namespace arch
} // namespace hilp
