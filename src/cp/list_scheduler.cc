#include "list_scheduler.hh"

#include <algorithm>
#include <numeric>

#include "bounds.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "profile.hh"

namespace hilp {
namespace cp {

namespace {

/** Total resource usage of a mode, used only as a greedy tie-break. */
double
totalUsage(const Mode &mode)
{
    double sum = 0.0;
    for (double u : mode.usage)
        sum += u;
    return sum;
}

} // anonymous namespace

ListResult
listSchedule(const Model &model, const std::vector<int> &priority)
{
    static const std::vector<int> no_forcing;
    return listSchedule(model, priority, no_forcing);
}

ListResult
listSchedule(const Model &model, const std::vector<int> &priority,
             const std::vector<int> &forced_mode)
{
    const int n = model.numTasks();
    hilp_assert(static_cast<int>(priority.size()) == n);
    hilp_assert(forced_mode.empty() ||
                static_cast<int>(forced_mode.size()) == n);

    std::vector<int> rank(n);
    for (int i = 0; i < n; ++i)
        rank[priority[i]] = i;

    ListResult result;
    result.schedule.tasks.assign(n, Assignment{});
    Profile table(model);

    std::vector<Time> end(n, 0);
    std::vector<Time> start(n, 0);
    std::vector<int> remaining_preds(n, 0);
    for (int t = 0; t < n; ++t) {
        remaining_preds[t] =
            static_cast<int>(model.predecessors(t).size()) +
            static_cast<int>(model.lagPredecessors(t).size());
    }

    std::vector<int> eligible;
    for (int t = 0; t < n; ++t)
        if (remaining_preds[t] == 0)
            eligible.push_back(t);

    int scheduled = 0;
    while (scheduled < n) {
        if (eligible.empty())
            panic("list scheduler ran out of eligible tasks; "
                  "precedence graph must be cyclic");
        // Highest-priority eligible task.
        size_t pick = 0;
        for (size_t i = 1; i < eligible.size(); ++i)
            if (rank[eligible[i]] < rank[eligible[pick]])
                pick = i;
        int t = eligible[pick];
        eligible[pick] = eligible.back();
        eligible.pop_back();

        Time est = 0;
        for (int p : model.predecessors(t))
            est = std::max(est, end[p]);
        for (const Model::LagEdge &edge : model.lagPredecessors(t))
            est = std::max(est, start[edge.other] + edge.lag);

        const Task &task = model.task(t);
        int best_mode = -1;
        Time best_start = -1;
        Time best_complete = 0;
        int only_mode = forced_mode.empty() ? -1 : forced_mode[t];
        for (size_t m = 0; m < task.modes.size(); ++m) {
            if (only_mode >= 0 && static_cast<int>(m) != only_mode)
                continue;
            const Mode &mode = task.modes[m];
            Time start = table.earliestStart(mode, est);
            if (start < 0)
                continue;
            Time complete = start + mode.duration;
            bool better = best_mode < 0 || complete < best_complete;
            if (!better && complete == best_complete) {
                const Mode &bm = task.modes[best_mode];
                if (mode.duration < bm.duration ||
                    (mode.duration == bm.duration &&
                     totalUsage(mode) < totalUsage(bm))) {
                    better = true;
                }
            }
            if (better) {
                best_mode = static_cast<int>(m);
                best_start = start;
                best_complete = complete;
            }
        }
        if (best_mode < 0) {
            result.feasible = false;
            return result;
        }
        table.place(task.modes[best_mode], best_start);
        result.schedule.tasks[t] = {best_mode, best_start};
        start[t] = best_start;
        end[t] = best_complete;
        ++scheduled;
        for (int s : model.successors(t))
            if (--remaining_preds[s] == 0)
                eligible.push_back(s);
        for (const Model::LagEdge &edge : model.lagSuccessors(t))
            if (--remaining_preds[edge.other] == 0)
                eligible.push_back(edge.other);
    }

    result.feasible = true;
    result.makespan = result.schedule.makespan(model);
    return result;
}

ListResult
bestGreedy(const Model &model, int random_restarts, uint64_t seed)
{
    const int n = model.numTasks();
    ListResult best;

    auto consider = [&](const std::vector<int> &priority) {
        ListResult r = listSchedule(model, priority);
        if (r.feasible && (!best.feasible || r.makespan < best.makespan))
            best = std::move(r);
    };

    CriticalPathData cp = criticalPathData(model);

    // Rule 1: longest tail first (critical-path priority).
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return cp.tail[a] > cp.tail[b];
    });
    consider(order);

    // Rule 2: longest minimum processing time first.
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return model.minDuration(a) > model.minDuration(b);
    });
    consider(order);

    // Rule 3: earliest head first, tail as tie-break.
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        if (cp.head[a] != cp.head[b])
            return cp.head[a] < cp.head[b];
        return cp.tail[a] > cp.tail[b];
    });
    consider(order);

    // Seeded random restarts.
    Rng rng(seed);
    for (int i = 0; i < random_restarts; ++i) {
        std::iota(order.begin(), order.end(), 0);
        rng.shuffle(order);
        consider(order);
    }
    return best;
}

ListResult
improveGreedy(const Model &model, const ListResult &start,
              int iterations, uint64_t seed)
{
    if (!start.feasible || iterations <= 0)
        return start;
    const int n = model.numTasks();
    if (n < 2)
        return start;

    // Recover a priority order from the incumbent schedule: start
    // time, then longest tail.
    CriticalPathData cp = criticalPathData(model);
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        const Assignment &aa = start.schedule.tasks[a];
        const Assignment &ab = start.schedule.tasks[b];
        if (aa.start != ab.start)
            return aa.start < ab.start;
        return cp.tail[a] > cp.tail[b];
    });

    ListResult best = start;
    ListResult reconstructed = listSchedule(model, order);
    if (reconstructed.feasible &&
        reconstructed.makespan < best.makespan)
        best = reconstructed;

    Rng rng(seed);
    std::vector<int> forced(n, -1);
    std::vector<int> candidate_order;
    std::vector<int> candidate_forced;
    for (int i = 0; i < iterations; ++i) {
        candidate_order = order;
        candidate_forced = forced;
        double dice = rng.uniformDouble();
        if (dice < 0.4) {
            // Swap two positions.
            size_t a = static_cast<size_t>(rng.uniformInt(0, n - 1));
            size_t b = static_cast<size_t>(rng.uniformInt(0, n - 1));
            std::swap(candidate_order[a], candidate_order[b]);
        } else if (dice < 0.7) {
            // Relocate one task to a random position.
            size_t from = static_cast<size_t>(rng.uniformInt(0, n - 1));
            size_t to = static_cast<size_t>(rng.uniformInt(0, n - 1));
            int task = candidate_order[from];
            candidate_order.erase(candidate_order.begin() +
                                  static_cast<ptrdiff_t>(from));
            candidate_order.insert(candidate_order.begin() +
                                   static_cast<ptrdiff_t>(to), task);
        } else {
            // Force (or release) the mode of a random task; this
            // lets the climber trade a slower unit for concurrency
            // the myopic mode rule cannot see.
            int task = static_cast<int>(rng.uniformInt(0, n - 1));
            int num_modes =
                static_cast<int>(model.task(task).modes.size());
            if (rng.chance(0.3)) {
                candidate_forced[task] = -1;
            } else {
                candidate_forced[task] = static_cast<int>(
                    rng.uniformInt(0, num_modes - 1));
            }
        }
        ListResult result =
            listSchedule(model, candidate_order, candidate_forced);
        if (!result.feasible)
            continue;
        // Accept sideways moves to escape plateaus.
        if (result.makespan <= best.makespan) {
            order = std::move(candidate_order);
            forced = std::move(candidate_forced);
            if (result.makespan < best.makespan)
                best = std::move(result);
        }
    }
    return best;
}

} // namespace cp
} // namespace hilp
