/**
 * @file
 * A small fixed-size thread pool used to evaluate independent SoC
 * configurations in parallel during design space exploration.
 */

#ifndef HILP_SUPPORT_THREAD_POOL_HH
#define HILP_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hilp {

/**
 * Fixed-size worker pool. Tasks are void() callables. A throw from a
 * task is captured on the worker (it never escapes into the worker
 * thread); the first captured exception is rethrown by the next
 * wait() / parallelFor() on the submitting thread, after all
 * outstanding tasks have drained. Later exceptions from the same
 * batch are dropped.
 */
class ThreadPool
{
  public:
    /**
     * Create a pool with the given number of workers (0 means
     * hardware concurrency, at least 1).
     */
    explicit ThreadPool(size_t num_threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for execution. */
    void submit(std::function<void()> task);

    /**
     * Block until all submitted tasks have completed. Rethrows the
     * first exception any of them raised (clearing it, so the pool
     * stays usable afterwards).
     */
    void wait();

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /**
     * Run fn(i) for each i in [0, n) across the pool and wait for
     * completion. fn must be safe to invoke concurrently for
     * distinct indices. Rethrows the first exception fn raised;
     * remaining indices may or may not have run by then.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    size_t inFlight_ = 0;
    bool shutdown_ = false;
    /** First exception thrown by a task since the last wait(). */
    std::exception_ptr firstError_;
};

} // namespace hilp

#endif // HILP_SUPPORT_THREAD_POOL_HH
