/**
 * @file
 * Figures 9-10: the streaming-dataflow extension (Section VII).
 * Schedules two SDA samples on the baseline (c1,g8,d3^1) SoC, on a
 * 2x-faster CPU, and on a GPU with 2x the SMs, using the
 * dependency-graph ordering constraint (Eq. 9). Expected (paper):
 * the baseline falls short of its pipelining objective; both
 * upgrades meet it - the faster CPU takes on more compute phases,
 * while with the bigger GPU the CPU runs DF and the GPU the rest.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hh"
#include "hilp/showcase.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

EngineOptions
sdaEngine()
{
    EngineOptions options;
    options.initialStepS = 0.5;
    options.horizonSteps = 128;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0;
    options.solver.maxSeconds = 10.0;
    return options;
}

void
emitFigure()
{
    bench::banner(
        "Figures 9-10 - streaming dataflow application (SDA)",
        "Two pipelined SDA samples; DAG dependencies via Eq. 9.\n"
        "Expected: both the 2x CPU and the 2x GPU variants beat the\n"
        "baseline by overlapping sample i+1 with sample i.");

    Table table({"SoC variant", "makespan (s)", "avg WLP", "status"});
    table.setAlign(0, Table::Align::Left);
    table.setAlign(3, Table::Align::Left);

    for (SdaVariant variant : {SdaVariant::Baseline,
                               SdaVariant::FastCpu,
                               SdaVariant::BigGpu}) {
        ProblemSpec spec = makeSdaProblem(variant, 2);
        EvalResult result = evaluate(spec, sdaEngine());
        table.addRow(RowBuilder()
                         .cell(std::string(toString(variant)))
                         .cell(result.makespanS, 1)
                         .cell(result.averageWlp, 2)
                         .cell(std::string(
                             cp::toString(result.status)))
                         .take());
        bench::section(std::string("schedule: ") +
                       toString(variant));
        std::printf("%s", result.schedule.gantt().c_str());
    }
    bench::section("summary");
    table.print();
}

void
BM_SolveSdaBaseline(benchmark::State &state)
{
    ProblemSpec spec = makeSdaProblem(SdaVariant::Baseline, 2);
    EngineOptions options = sdaEngine();
    options.solver.maxSeconds = 2.0;
    for (auto _ : state) {
        EvalResult result = evaluate(spec, options);
        benchmark::DoNotOptimize(result.makespanS);
    }
}
BENCHMARK(BM_SolveSdaBaseline)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
