/**
 * @file
 * String formatting and manipulation helpers.
 */

#ifndef HILP_SUPPORT_STR_HH
#define HILP_SUPPORT_STR_HH

#include <string>
#include <vector>

namespace hilp {

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split a string on a delimiter character; keeps empty fields. */
std::vector<std::string> split(const std::string &s, char delim);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** True when s starts with the given prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/**
 * Render a double compactly for tables: fixed with the given number
 * of decimals, but trimming a plain integer to no decimal point when
 * decimals == 0.
 */
std::string fmtDouble(double v, int decimals = 2);

} // namespace hilp

#endif // HILP_SUPPORT_STR_HH
