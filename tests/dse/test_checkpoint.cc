/** @file Tests for sweep checkpointing and resume. */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "dse/checkpoint.hh"
#include "dse/explore.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace dse {
namespace {

/** A unique path under gtest's temp dir, removed by the fixture. */
class Checkpoint : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = ::testing::TempDir() + "hilp_checkpoint_" +
                info->name() + ".jsonl";
        std::remove(path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

DsePoint
samplePoint(double makespan_s)
{
    DsePoint point;
    point.ok = true;
    point.fingerprint = 0xdeadbeefcafef00dull;
    point.makespanS = makespan_s;
    point.speedup = 10.0 / makespan_s;
    point.gap = 0.07;
    point.averageWlp = 2.5;
    point.status = cp::SolveStatus::NearOptimal;
    point.nodes = 4242;
    point.backtracks = 99;
    point.solves = 3;
    point.solveSeconds = 1.25;
    point.warmStarted = true;
    point.degraded = true;
    return point;
}

TEST_F(Checkpoint, KeySeparatesModelsConfigsAndInstances)
{
    uint64_t base = checkpointKey(1, "(c1,g0,d0^0)", ModelKind::Hilp);
    EXPECT_NE(base, checkpointKey(2, "(c1,g0,d0^0)", ModelKind::Hilp));
    EXPECT_NE(base, checkpointKey(1, "(c2,g0,d0^0)", ModelKind::Hilp));
    // MA/Gables/HILP share lowered specs, so the kind must be part
    // of the identity or a resumed MA sweep would serve HILP points.
    EXPECT_NE(base,
              checkpointKey(1, "(c1,g0,d0^0)", ModelKind::MultiAmdahl));
    EXPECT_NE(base, checkpointKey(1, "(c1,g0,d0^0)", ModelKind::Gables));
}

TEST_F(Checkpoint, RecordsRoundTripThroughResume)
{
    DsePoint written = samplePoint(2.0);
    DsePoint failed;
    failed.ok = false;
    failed.status = cp::SolveStatus::NoSolution;
    failed.note = "unschedulable under budget";

    {
        SweepCheckpoint checkpoint;
        ASSERT_TRUE(checkpoint.open(path_, false));
        checkpoint.record(11, ModelKind::Hilp, written);
        checkpoint.record(22, ModelKind::Hilp, failed);
    }

    SweepCheckpoint resumed;
    std::string error;
    ASSERT_TRUE(resumed.open(path_, true, &error)) << error;
    EXPECT_EQ(resumed.loaded(), 2u);

    DsePoint restored;
    ASSERT_TRUE(resumed.lookup(11, &restored));
    EXPECT_TRUE(restored.resumed);
    EXPECT_TRUE(restored.ok);
    EXPECT_EQ(restored.fingerprint, written.fingerprint);
    EXPECT_DOUBLE_EQ(restored.makespanS, written.makespanS);
    EXPECT_DOUBLE_EQ(restored.speedup, written.speedup);
    EXPECT_DOUBLE_EQ(restored.gap, written.gap);
    EXPECT_DOUBLE_EQ(restored.averageWlp, written.averageWlp);
    EXPECT_EQ(restored.status, written.status);
    EXPECT_EQ(restored.nodes, written.nodes);
    EXPECT_EQ(restored.backtracks, written.backtracks);
    EXPECT_EQ(restored.solves, written.solves);
    EXPECT_DOUBLE_EQ(restored.solveSeconds, written.solveSeconds);
    EXPECT_TRUE(restored.warmStarted);
    EXPECT_TRUE(restored.degraded);

    ASSERT_TRUE(resumed.lookup(22, &restored));
    EXPECT_FALSE(restored.ok);
    EXPECT_TRUE(restored.resumed);
    EXPECT_EQ(restored.note, "unschedulable under budget");
    EXPECT_FALSE(resumed.lookup(33, &restored));
}

Schedule
sampleSchedule()
{
    Schedule schedule;
    schedule.stepS = 2.0;
    schedule.cpuCores = 4.0;
    schedule.deviceNames = {"GPU", "DSA.KM"};
    ScheduledPhase a;
    a.app = 0;
    a.phase = 1;
    a.name = "HS.compute";
    a.option = 2;
    a.unitLabel = "GPU@765";
    a.device = 0;
    a.startStep = 3;
    a.durationSteps = 5;
    a.startS = 6.0;
    a.durationS = 10.0;
    a.powerW = 12.5;
    a.bwGBs = 3.25;
    a.cpuCores = 0.5;
    schedule.phases.push_back(a);
    ScheduledPhase b;
    b.app = 1;
    b.phase = 0;
    b.name = "KM.assign";
    b.option = 0;
    b.unitLabel = "DSA.KM";
    b.device = 1;
    b.startStep = 0;
    b.durationSteps = 2;
    b.startS = 0.0;
    b.durationS = 4.0;
    b.powerW = 2.0;
    b.bwGBs = 1.0;
    b.cpuCores = 0.0;
    schedule.phases.push_back(b);
    return schedule;
}

TEST_F(Checkpoint, ScheduleRoundTripsThroughResume)
{
    Schedule schedule = sampleSchedule();
    {
        SweepCheckpoint checkpoint;
        ASSERT_TRUE(checkpoint.open(path_, false));
        checkpoint.record(11, ModelKind::Hilp, samplePoint(2.0),
                          &schedule);
        // The analytic models record without a schedule.
        checkpoint.record(22, ModelKind::MultiAmdahl,
                          samplePoint(3.0));
    }

    SweepCheckpoint resumed;
    ASSERT_TRUE(resumed.open(path_, true));
    EXPECT_EQ(resumed.loaded(), 2u);

    Schedule restored;
    ASSERT_TRUE(resumed.lookupSchedule(11, &restored));
    EXPECT_DOUBLE_EQ(restored.stepS, schedule.stepS);
    EXPECT_DOUBLE_EQ(restored.cpuCores, schedule.cpuCores);
    ASSERT_EQ(restored.deviceNames, schedule.deviceNames);
    ASSERT_EQ(restored.phases.size(), schedule.phases.size());
    for (size_t i = 0; i < schedule.phases.size(); ++i) {
        const ScheduledPhase &want = schedule.phases[i];
        const ScheduledPhase &got = restored.phases[i];
        EXPECT_EQ(got.app, want.app) << i;
        EXPECT_EQ(got.phase, want.phase) << i;
        EXPECT_EQ(got.name, want.name) << i;
        EXPECT_EQ(got.option, want.option) << i;
        EXPECT_EQ(got.unitLabel, want.unitLabel) << i;
        EXPECT_EQ(got.device, want.device) << i;
        EXPECT_EQ(got.startStep, want.startStep) << i;
        EXPECT_EQ(got.durationSteps, want.durationSteps) << i;
        EXPECT_DOUBLE_EQ(got.startS, want.startS) << i;
        EXPECT_DOUBLE_EQ(got.durationS, want.durationS) << i;
        EXPECT_DOUBLE_EQ(got.powerW, want.powerW) << i;
        EXPECT_DOUBLE_EQ(got.bwGBs, want.bwGBs) << i;
        EXPECT_DOUBLE_EQ(got.cpuCores, want.cpuCores) << i;
    }

    // The schedule-less record resumes fine but serves no schedule,
    // and the restored point itself is unaffected either way.
    EXPECT_FALSE(resumed.lookupSchedule(22, &restored));
    DsePoint point;
    ASSERT_TRUE(resumed.lookup(11, &point));
    EXPECT_DOUBLE_EQ(point.makespanS, 2.0);
    ASSERT_TRUE(resumed.lookup(22, &point));
    EXPECT_DOUBLE_EQ(point.makespanS, 3.0);
}

TEST_F(Checkpoint, MalformedScheduleDegradesToNoSchedule)
{
    {
        SweepCheckpoint checkpoint;
        ASSERT_TRUE(checkpoint.open(path_, false));
        checkpoint.record(1, ModelKind::Hilp, samplePoint(1.0));
    }
    // A hand-damaged record whose schedule member is garbage: the
    // point must still resume (losing the warm start costs effort,
    // not correctness), the schedule lookup must miss.
    std::FILE *file = std::fopen(path_.c_str(), "a");
    ASSERT_NE(file, nullptr);
    std::fputs("{\"key\":\"0000000000000002\",\"kind\":\"HILP\","
               "\"ok\":true,\"makespan_s\":4.0,"
               "\"schedule\":{\"phases\":[[1,2]]}}\n", file);
    std::fclose(file);

    SweepCheckpoint resumed;
    ASSERT_TRUE(resumed.open(path_, true));
    EXPECT_EQ(resumed.loaded(), 2u);
    DsePoint point;
    ASSERT_TRUE(resumed.lookup(2, &point));
    EXPECT_TRUE(point.ok);
    Schedule restored;
    EXPECT_FALSE(resumed.lookupSchedule(2, &restored));
}

TEST_F(Checkpoint, TornFinalLineIsDroppedNotFatal)
{
    {
        SweepCheckpoint checkpoint;
        ASSERT_TRUE(checkpoint.open(path_, false));
        checkpoint.record(1, ModelKind::Hilp, samplePoint(1.0));
        checkpoint.record(2, ModelKind::Hilp, samplePoint(2.0));
    }
    // Simulate a SIGKILL mid-write: a record with no trailing
    // newline, cut in the middle of its JSON.
    std::FILE *file = std::fopen(path_.c_str(), "a");
    ASSERT_NE(file, nullptr);
    std::fputs("{\"key\":\"0000000000000003\",\"ok\":tr", file);
    std::fclose(file);

    SweepCheckpoint resumed;
    ASSERT_TRUE(resumed.open(path_, true));
    EXPECT_EQ(resumed.loaded(), 2u);
    DsePoint point;
    EXPECT_TRUE(resumed.lookup(1, &point));
    EXPECT_TRUE(resumed.lookup(2, &point));
    EXPECT_FALSE(resumed.lookup(3, &point));

    // The torn record's point can be re-recorded and survives the
    // next resume: append stays usable after a dirty load.
    resumed.record(3, ModelKind::Hilp, samplePoint(3.0));
    resumed.close();
    SweepCheckpoint again;
    ASSERT_TRUE(again.open(path_, true));
    EXPECT_EQ(again.loaded(), 3u);
    EXPECT_TRUE(again.lookup(3, &point));
}

TEST_F(Checkpoint, InteriorCorruptionIsSkippedAndCounted)
{
    {
        SweepCheckpoint checkpoint;
        ASSERT_TRUE(checkpoint.open(path_, false));
        checkpoint.record(1, ModelKind::Hilp, samplePoint(1.0));
    }
    // Corruption in the *middle* of the ledger - a torn write that
    // later appends sealed over, or flipped bits - followed by good
    // records: the loader must skip and count, never abort, and the
    // records after the damage must survive.
    std::FILE *file = std::fopen(path_.c_str(), "a");
    ASSERT_NE(file, nullptr);
    std::fputs("{\"key\":\"000000000000?? garbage\n", file);
    std::fputs("not json at all\n", file);
    std::fclose(file);
    {
        SweepCheckpoint append;
        ASSERT_TRUE(append.open(path_, true));
        append.record(2, ModelKind::Hilp, samplePoint(2.0));
    }

    SweepCheckpoint resumed;
    std::string error;
    ASSERT_TRUE(resumed.open(path_, true, &error)) << error;
    EXPECT_EQ(resumed.loaded(), 2u);
    EXPECT_EQ(resumed.dropped(), 2u);
    DsePoint point;
    EXPECT_TRUE(resumed.lookup(1, &point));
    EXPECT_TRUE(resumed.lookup(2, &point));
}

TEST_F(Checkpoint, DroppedResetsAcrossOpens)
{
    std::FILE *file = std::fopen(path_.c_str(), "w");
    ASSERT_NE(file, nullptr);
    std::fputs("garbage line\n", file);
    std::fclose(file);

    SweepCheckpoint checkpoint;
    ASSERT_TRUE(checkpoint.open(path_, true));
    EXPECT_EQ(checkpoint.dropped(), 1u);
    checkpoint.close();
    // A truncating reopen starts a clean ledger: nothing dropped.
    ASSERT_TRUE(checkpoint.open(path_, false));
    EXPECT_EQ(checkpoint.dropped(), 0u);
    EXPECT_EQ(checkpoint.loaded(), 0u);
}

TEST_F(Checkpoint, FsyncedRecordsRoundTrip)
{
    // Behavioral coverage for the durability knob: records written
    // with fsync-on-flush must read back exactly like buffered ones.
    {
        SweepCheckpoint checkpoint;
        ASSERT_TRUE(checkpoint.open(path_, false));
        checkpoint.setFsync(true);
        checkpoint.record(1, ModelKind::Hilp, samplePoint(1.0));
        checkpoint.record(2, ModelKind::Hilp, samplePoint(2.0));
    }
    SweepCheckpoint resumed;
    ASSERT_TRUE(resumed.open(path_, true));
    EXPECT_EQ(resumed.loaded(), 2u);
    EXPECT_EQ(resumed.dropped(), 0u);
}

TEST_F(Checkpoint, OpenWithoutResumeTruncates)
{
    {
        SweepCheckpoint checkpoint;
        ASSERT_TRUE(checkpoint.open(path_, false));
        checkpoint.record(7, ModelKind::Hilp, samplePoint(1.0));
    }
    SweepCheckpoint fresh;
    ASSERT_TRUE(fresh.open(path_, false));
    EXPECT_EQ(fresh.loaded(), 0u);
    DsePoint point;
    EXPECT_FALSE(fresh.lookup(7, &point));
}

TEST_F(Checkpoint, SweepResumesCompletedPointsWithoutReevaluation)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    std::vector<arch::SocConfig> configs;
    for (int cpus : {1, 2, 4}) {
        arch::SocConfig c;
        c.cpuCores = cpus;
        c.gpuSms = 16;
        configs.push_back(c);
    }

    SweepCheckpoint first;
    ASSERT_TRUE(first.open(path_, false));
    DseOptions options;
    options.checkpoint = &first;
    auto original = exploreSpace(configs, wl, arch::Constraints{},
                                 ModelKind::MultiAmdahl, options);
    first.close();

    SweepCheckpoint second;
    ASSERT_TRUE(second.open(path_, true));
    EXPECT_EQ(second.loaded(), configs.size());
    DseOptions resume_options;
    resume_options.checkpoint = &second;
    // Any evaluation would be a checkpoint miss: the fault injector
    // proves the resumed points never reach the evaluator.
    resume_options.injectFault = [](const arch::SocConfig &) {
        throw std::runtime_error("resume should not re-evaluate");
    };
    resume_options.failFast = true;
    auto resumed = exploreSpace(configs, wl, arch::Constraints{},
                                ModelKind::MultiAmdahl,
                                resume_options);

    ASSERT_EQ(resumed.size(), original.size());
    for (size_t i = 0; i < resumed.size(); ++i) {
        EXPECT_TRUE(resumed[i].resumed) << i;
        EXPECT_EQ(resumed[i].ok, original[i].ok) << i;
        EXPECT_DOUBLE_EQ(resumed[i].makespanS, original[i].makespanS)
            << i;
        EXPECT_DOUBLE_EQ(resumed[i].speedup, original[i].speedup)
            << i;
        EXPECT_EQ(resumed[i].config.name(), original[i].config.name())
            << i;
        EXPECT_DOUBLE_EQ(resumed[i].areaMm2, original[i].areaMm2)
            << i;
    }
}

} // anonymous namespace
} // namespace dse
} // namespace hilp
