/**
 * @file
 * Unit tests for the interval-based occupancy Profile: the same
 * contract the dense timetable satisfies, plus the interval-specific
 * guarantees (busy-interval jumping, compact representation, exact
 * long place/remove round trips).
 */

#include <gtest/gtest.h>

#include "cp/model.hh"
#include "cp/profile.hh"

namespace hilp {
namespace cp {
namespace {

/** Model with one 2.0-capacity resource and two groups. */
Model
baseModel()
{
    Model m;
    m.addResource(2.0, "power");
    m.addGroup("GPU");
    m.addGroup("DSA");
    m.setHorizon(10);
    return m;
}

TEST(Profile, EmptyProfileFitsEverything)
{
    Model m = baseModel();
    Profile profile(m);
    Mode mode{0, 4, {2.0}};
    EXPECT_TRUE(profile.fits(mode, 0));
    EXPECT_EQ(profile.earliestStart(mode, 0), 0);
}

TEST(Profile, HorizonLimitsPlacement)
{
    Model m = baseModel();
    Profile profile(m);
    Mode mode{0, 4, {1.0}};
    EXPECT_TRUE(profile.fits(mode, 6));
    EXPECT_FALSE(profile.fits(mode, 7)); // would end at 11 > 10.
    EXPECT_EQ(profile.earliestStart(mode, 7), -1);
}

TEST(Profile, GroupConflictJumpsToIntervalEnd)
{
    Model m = baseModel();
    Profile profile(m);
    Mode first{0, 4, {0.0}};
    profile.place(first, 2); // GPU busy [2, 6).
    Mode second{0, 3, {0.0}};
    // The query jumps straight past the whole busy interval instead
    // of probing 3, 4, 5 one step at a time.
    EXPECT_EQ(profile.earliestStart(second, 0), 6);
    // A different group is unaffected.
    Mode other{1, 3, {0.0}};
    EXPECT_EQ(profile.earliestStart(other, 0), 0);
}

TEST(Profile, ResourceConflictJumpsToSegmentEnd)
{
    Model m = baseModel();
    Profile profile(m);
    Mode first{0, 4, {1.5}};
    profile.place(first, 0); // power 1.5 over [0, 4).
    Mode second{1, 2, {1.0}}; // different group, needs 1.0.
    EXPECT_EQ(profile.earliestStart(second, 0), 4);
    Mode light{1, 2, {0.5}}; // fits alongside.
    EXPECT_EQ(profile.earliestStart(light, 0), 0);
}

TEST(Profile, GapBetweenPlacementsIsFound)
{
    Model m = baseModel();
    Profile profile(m);
    Mode a{0, 2, {0.0}};
    profile.place(a, 0); // GPU [0, 2)
    Mode b{0, 3, {0.0}};
    profile.place(b, 5); // GPU [5, 8)
    Mode probe{0, 3, {0.0}};
    EXPECT_EQ(profile.earliestStart(probe, 0), 2); // fits in [2, 5).
    Mode too_long{0, 4, {0.0}};
    EXPECT_EQ(profile.earliestStart(too_long, 0), -1); // 8 + 4 > 10.
}

TEST(Profile, PlaceRemoveRoundTrips)
{
    Model m = baseModel();
    Profile profile(m);
    Mode mode{0, 4, {1.2}};
    profile.place(mode, 3);
    EXPECT_TRUE(profile.groupBusy(0, 3));
    EXPECT_NEAR(profile.usage(0, 4), 1.2, 1e-8);
    profile.remove(mode, 3);
    EXPECT_FALSE(profile.groupBusy(0, 3));
    EXPECT_EQ(profile.usageUnits(0, 4), 0);
    EXPECT_EQ(profile.earliestStart(mode, 0), 0);
}

TEST(Profile, StackedUsageAccumulates)
{
    Model m = baseModel();
    Profile profile(m);
    Mode a{0, 5, {0.8}};
    Mode b{1, 5, {0.8}};
    profile.place(a, 0);
    profile.place(b, 0);
    EXPECT_NEAR(profile.usage(0, 2), 1.6, 1e-8);
    Mode probe{kNoGroup, 1, {0.5}};
    EXPECT_EQ(profile.earliestStart(probe, 0), 5); // 1.6 + 0.5 > 2.0.
}

TEST(Profile, ZeroDurationAlwaysFits)
{
    Model m = baseModel();
    Profile profile(m);
    Mode blocker{0, 10, {2.0}};
    profile.place(blocker, 0);
    Mode zero{0, 0, {2.0}};
    EXPECT_EQ(profile.earliestStart(zero, 3), 3);
    EXPECT_TRUE(profile.fits(zero, 10));
}

TEST(Profile, NoGroupModeIgnoresGroups)
{
    Model m = baseModel();
    Profile profile(m);
    Mode gpu_block{0, 10, {0.0}};
    profile.place(gpu_block, 0);
    Mode cpuish{kNoGroup, 4, {1.0}};
    EXPECT_EQ(profile.earliestStart(cpuish, 0), 0);
}

TEST(Profile, EstIsRespected)
{
    Model m = baseModel();
    Profile profile(m);
    Mode mode{0, 2, {0.0}};
    EXPECT_EQ(profile.earliestStart(mode, 5), 5);
}

TEST(Profile, CapacityBoundaryIsInclusive)
{
    Model m = baseModel();
    Profile profile(m);
    Mode exact{kNoGroup, 3, {2.0}}; // exactly the capacity.
    EXPECT_TRUE(profile.fits(exact, 0));
    profile.place(exact, 0);
    Mode epsilon{kNoGroup, 1, {0.001}};
    EXPECT_EQ(profile.earliestStart(epsilon, 0), 3);
}

TEST(Profile, RepresentationIsCompact)
{
    Model m;
    m.addResource(4.0, "power");
    m.addGroup("GPU");
    m.setHorizon(100000); // huge horizon, tiny memory.
    Profile profile(m);
    EXPECT_EQ(profile.breakpoints(0), 1u); // the constant-zero segment.
    Mode mode{0, 10, {1.0}};
    profile.place(mode, 50000);
    // One placed interval costs at most two extra breakpoints and
    // one busy interval, regardless of the horizon.
    EXPECT_LE(profile.breakpoints(0), 3u);
    EXPECT_EQ(profile.intervals(0), 1u);
    // earliestStart over an empty prefix of a 1e5 horizon is a jump,
    // not a 50000-step scan; just confirm correctness here.
    Mode probe{0, 20, {3.5}};
    EXPECT_EQ(profile.earliestStart(probe, 0), 0);
    Mode heavy{0, 20, {3.5}};
    EXPECT_EQ(profile.earliestStart(heavy, 49990), 50010);
    profile.remove(mode, 50000);
    EXPECT_EQ(profile.breakpoints(0), 1u);
    EXPECT_EQ(profile.intervals(0), 0u);
}

/**
 * Regression for the historic floating-point drift: the dense
 * timetable used to accumulate double usage and clamp tiny negative
 * residue in remove(), so millions of place/remove cycles (exactly
 * what branch-and-bound does) could drift the profile. In scaled
 * integer units every round trip must restore the representation
 * bit-for-bit; run a long randomized-shape workload and require an
 * exactly-empty profile at the end.
 */
TEST(Profile, LongPlaceRemoveRoundTripIsExact)
{
    Model m;
    m.addResource(1.0, "power");   // awkward fractions below.
    m.addResource(3.3, "bw");
    int g = m.addGroup("GPU");
    m.setHorizon(64);
    Profile profile(m);

    // 0.1 and 0.3 are classic repeating binary fractions: under
    // double accumulation, (x + 0.1) - 0.1 != x for many x.
    Mode a{g, 7, {0.1, 0.3}};
    Mode b{kNoGroup, 5, {0.3, 1.1}};
    Mode c{kNoGroup, 9, {0.2, 0.7}};

    for (int iter = 0; iter < 20000; ++iter) {
        Time sa = static_cast<Time>(iter % 50);
        Time sb = static_cast<Time>((iter * 7) % 59);
        Time sc = static_cast<Time>((iter * 13) % 55);
        profile.place(a, sa);
        profile.place(b, sb);
        profile.place(c, sc);
        profile.remove(b, sb);
        profile.remove(a, sa);
        profile.remove(c, sc);
    }

    for (Time s = 0; s < 64; ++s) {
        ASSERT_EQ(profile.usageUnits(0, s), 0) << "step " << s;
        ASSERT_EQ(profile.usageUnits(1, s), 0) << "step " << s;
        ASSERT_FALSE(profile.groupBusy(g, s)) << "step " << s;
    }
    // Canonical form: an empty profile is exactly one zero segment.
    EXPECT_EQ(profile.breakpoints(0), 1u);
    EXPECT_EQ(profile.breakpoints(1), 1u);
    EXPECT_EQ(profile.intervals(g), 0u);
    // And a full-capacity mode fits at 0 again.
    Mode full{g, 64, {1.0, 3.3}};
    EXPECT_EQ(profile.earliestStart(full, 0), 0);
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
