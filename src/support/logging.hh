/**
 * @file
 * Status-message and error-handling primitives.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a HILP bug), fatal() is for user errors (bad
 * configuration or inputs), and inform()/warn() report status without
 * stopping execution.
 */

#ifndef HILP_SUPPORT_LOGGING_HH
#define HILP_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace hilp {

/** Verbosity levels for status messages. */
enum class LogLevel : int {
    Silent = 0,   //!< No status output at all.
    Warn = 1,     //!< Only warnings.
    Inform = 2,   //!< Warnings and informative messages (default).
    Debug = 3,    //!< Everything, including per-solve chatter.
};

/** Get the process-wide log level. */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/**
 * Parse a log-level name ("silent", "warn", "inform", "debug", or
 * the numeric levels "0".."3"; case-insensitive). Returns true and
 * fills *out on success. This is the parser behind the
 * HILP_LOG_LEVEL environment variable, which is applied to the
 * process-wide level at startup (an unrecognized value is reported
 * once and ignored).
 */
bool parseLogLevel(const char *text, LogLevel *out);

namespace detail {

/** Emit a formatted message with the given prefix to stderr. */
void emit(const char *prefix, const std::string &msg);

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, va_list ap);

} // namespace detail

/**
 * Report an informative status message. Printed at LogLevel::Inform
 * and above.
 */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a condition that might indicate a problem but does not stop
 * execution. Printed at LogLevel::Warn and above.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report debug chatter. Printed at LogLevel::Debug only. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of a user error (bad configuration, invalid
 * arguments). Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of an internal error that should never happen
 * regardless of user input, i.e., a HILP bug. Calls abort() so a core
 * dump or debugger can take over.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert an internal invariant; panics with file/line context when the
 * condition is false. Unlike assert(3) this is active in all build
 * types because HILP's solver correctness depends on these checks.
 */
#define hilp_assert(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::hilp::detail::assertFail(#cond, __FILE__, __LINE__);      \
        }                                                               \
    } while (0)

namespace detail {
[[noreturn]] void assertFail(const char *cond, const char *file, int line);
} // namespace detail

} // namespace hilp

#endif // HILP_SUPPORT_LOGGING_HH
