/**
 * @file
 * The distributed-sweep worker loop: lease work units from a
 * coordinator daemon, evaluate them through a local EvalService, and
 * stream the results back as checkpoint-format records.
 *
 * A worker is deliberately stateless between leases: everything it
 * needs to evaluate a unit - the config labels, workload, model,
 * constraints, engine options - arrives in the lease grant, so any
 * worker can pick up any unit, including one re-issued after a peer
 * died. Results are submitted per point as they complete (each
 * submit doubles as a liveness proof, refreshing the lease); a
 * heartbeat thread on its own connection covers long solves that
 * outlast the lease window without producing a point.
 *
 * The worker exits when the coordinator reports the run complete, or
 * with an error when the control connection dies mid-unit.
 */

#ifndef HILP_SERVICE_WORKER_HH
#define HILP_SERVICE_WORKER_HH

#include <string>

#include "eval_service.hh"

namespace hilp {
namespace service {

/** Worker policy knobs. */
struct WorkerOptions
{
    /** Worker identity, for coordinator bookkeeping and logs. */
    std::string id = "worker";
    /** Delay between lease polls when the coordinator says wait. */
    double pollIntervalS = 0.2;
    /** Total time to keep retrying the initial connect. */
    double connectRetryS = 10.0;
    /**
     * The service evaluating the units. Optional: when null the
     * worker runs a private one with default sizing. Not owned.
     */
    EvalService *service = nullptr;
};

/**
 * Run the lease/evaluate/submit loop against the coordinator daemon
 * at address until it reports the run complete. Returns false and
 * fills *error when the connection cannot be established or dies.
 */
bool runWorker(const std::string &address,
               const WorkerOptions &options, std::string *error);

} // namespace service
} // namespace hilp

#endif // HILP_SERVICE_WORKER_HH
