/**
 * @file
 * Tests of the cross-instance solver-reuse layer: problem
 * fingerprints, the solve memo, schedule transfer between similar
 * problems, and the reuse-aware evaluate() entry point.
 */

#include <gtest/gtest.h>

#include "cp/model.hh"
#include "hilp/discretize.hh"
#include "hilp/engine.hh"
#include "hilp/showcase.hh"

namespace hilp {
namespace {

EngineOptions
exampleOptions()
{
    EngineOptions options;
    options.initialStepS = 1.0;
    options.horizonSteps = 64;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0;
    return options;
}

TEST(Fingerprint, StableAcrossCallsAndCopies)
{
    ProblemSpec spec = makeTwoAppExample();
    ProblemSpec copy = spec;
    EXPECT_EQ(spec.fingerprint(), spec.fingerprint());
    EXPECT_EQ(spec.fingerprint(), copy.fingerprint());
}

TEST(Fingerprint, IgnoresTheSpecName)
{
    ProblemSpec a = makeTwoAppExample();
    ProblemSpec b = a;
    b.name = "same instance, different label";
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, SensitiveToEveryMatrixEntry)
{
    ProblemSpec base = makeTwoAppExample();
    uint64_t reference = base.fingerprint();

    ProblemSpec changed = base;
    changed.apps[0].phases[0].options[0].timeS += 0.5;
    EXPECT_NE(changed.fingerprint(), reference);

    changed = base;
    changed.apps[0].phases[0].options[0].powerW += 1.0;
    EXPECT_NE(changed.fingerprint(), reference);

    changed = base;
    changed.powerBudgetW = 3.0;
    EXPECT_NE(changed.fingerprint(), reference);

    changed = base;
    changed.cpuCores += 1.0;
    EXPECT_NE(changed.fingerprint(), reference);

    changed = base;
    changed.deviceNames.push_back("NPU");
    EXPECT_NE(changed.fingerprint(), reference);
}

TEST(Fingerprint, ImplicitChainEqualsExplicitChain)
{
    ProblemSpec implicit = makeTwoAppExample();
    ProblemSpec explicit_chain = implicit;
    for (AppSpec &app : explicit_chain.apps) {
        ASSERT_TRUE(app.deps.empty());
        for (int p = 0; p + 1 < static_cast<int>(app.phases.size());
             ++p)
            app.deps.emplace_back(p, p + 1);
    }
    EXPECT_EQ(implicit.fingerprint(), explicit_chain.fingerprint());
}

TEST(SolveMemo, MissThenHit)
{
    SolveMemo memo;
    EvalResult out;
    EXPECT_FALSE(memo.lookup(42, &out));
    EXPECT_EQ(memo.misses(), 1);

    EvalResult stored;
    stored.ok = true;
    stored.makespanS = 7.0;
    stored.solves = 3;
    stored.totalNodes = 100;
    stored.totalSeconds = 1.5;
    stored.warmStarted = true;
    memo.insert(42, stored);

    ASSERT_TRUE(memo.lookup(42, &out));
    EXPECT_EQ(memo.hits(), 1);
    EXPECT_TRUE(out.ok);
    EXPECT_DOUBLE_EQ(out.makespanS, 7.0);
    EXPECT_TRUE(out.cacheHit);
    // A hit reports zero *new* effort.
    EXPECT_EQ(out.solves, 0);
    EXPECT_EQ(out.totalNodes, 0);
    EXPECT_DOUBLE_EQ(out.totalSeconds, 0.0);
    EXPECT_FALSE(out.warmStarted);
}

TEST(SolveMemo, EqualQualityKeepsTheFirstInsertion)
{
    SolveMemo memo;
    EvalResult first;
    first.makespanS = 1.0;
    EvalResult second;
    second.makespanS = 2.0;
    memo.insert(7, first);
    memo.insert(7, second);
    EvalResult out;
    ASSERT_TRUE(memo.lookup(7, &out));
    EXPECT_DOUBLE_EQ(out.makespanS, 1.0);
}

TEST(SolveMemo, BetterResultReplacesAWorseEntry)
{
    // The old emplace-only insert pinned whatever landed first: a
    // timed-out wide-gap result would be served forever even after a
    // later evaluation solved the same instance to optimality.
    SolveMemo memo;
    EvalResult wide;
    wide.ok = true;
    wide.makespanS = 3.0;
    wide.gap = 0.4;
    memo.insert(7, wide);

    EvalResult tight;
    tight.ok = true;
    tight.makespanS = 2.5;
    tight.gap = 0.01;
    memo.insert(7, tight);

    EvalResult out;
    ASSERT_TRUE(memo.lookup(7, &out));
    EXPECT_DOUBLE_EQ(out.makespanS, 2.5);
    EXPECT_DOUBLE_EQ(out.gap, 0.01);

    // And the replacement is one-way: a worse result never evicts a
    // better one.
    memo.insert(7, wide);
    ASSERT_TRUE(memo.lookup(7, &out));
    EXPECT_DOUBLE_EQ(out.gap, 0.01);
}

TEST(SolveMemo, SolvedResultReplacesAFailedEntry)
{
    SolveMemo memo;
    EvalResult failed;
    failed.ok = false;
    failed.status = cp::SolveStatus::NoSolution;
    memo.insert(9, failed);

    EvalResult solved;
    solved.ok = true;
    solved.makespanS = 4.0;
    solved.gap = 0.5; // Even a wide-gap solve beats no solution.
    memo.insert(9, solved);

    EvalResult out;
    ASSERT_TRUE(memo.lookup(9, &out));
    EXPECT_TRUE(out.ok);
    EXPECT_DOUBLE_EQ(out.makespanS, 4.0);

    memo.insert(9, failed);
    ASSERT_TRUE(memo.lookup(9, &out));
    EXPECT_TRUE(out.ok);
}

TEST(SolveMemo, EqualRankTiebreakIsInsertOrderIndependent)
{
    // Two ok results of identical rank (gap, degraded) but different
    // makespans: the same entry must survive whichever insert order
    // the sweep's threads happen to race into. Before the content
    // tiebreak, equal-rank inserts kept whoever landed first, so a
    // parallel sweep's memo depended on thread interleaving.
    EvalResult a;
    a.ok = true;
    a.makespanS = 2.0;
    a.gap = 0.05;
    EvalResult b = a;
    b.makespanS = 2.5;

    EvalResult out;
    SolveMemo ab;
    ab.insert(3, a);
    ab.insert(3, b);
    ASSERT_TRUE(ab.lookup(3, &out));
    EXPECT_DOUBLE_EQ(out.makespanS, 2.0);

    SolveMemo ba;
    ba.insert(3, b);
    ba.insert(3, a);
    ASSERT_TRUE(ba.lookup(3, &out));
    EXPECT_DOUBLE_EQ(out.makespanS, 2.0);
}

TEST(SolveMemo, StructuralDigestBreaksExactScalarTies)
{
    // Same scalars, different schedules: the structural digest picks
    // one winner, the same one in both orders.
    EvalResult a;
    a.ok = true;
    a.makespanS = 2.0;
    a.gap = 0.05;
    EvalResult b = a;
    ScheduledPhase phase;
    phase.app = 0;
    phase.phase = 0;
    phase.option = 1;
    a.schedule.phases.push_back(phase);
    phase.option = 2;
    b.schedule.phases.push_back(phase);

    EvalResult ab_out;
    SolveMemo ab;
    ab.insert(5, a);
    ab.insert(5, b);
    ASSERT_TRUE(ab.lookup(5, &ab_out));

    EvalResult ba_out;
    SolveMemo ba;
    ba.insert(5, b);
    ba.insert(5, a);
    ASSERT_TRUE(ba.lookup(5, &ba_out));

    ASSERT_EQ(ab_out.schedule.phases.size(), 1u);
    ASSERT_EQ(ba_out.schedule.phases.size(), 1u);
    EXPECT_EQ(ab_out.schedule.phases[0].option,
              ba_out.schedule.phases[0].option);
}

TEST(SolveMemo, NonDegradedResultReplacesADegradedTwin)
{
    SolveMemo memo;
    EvalResult degraded;
    degraded.ok = true;
    degraded.makespanS = 2.0;
    degraded.gap = 0.05;
    degraded.degraded = true;
    memo.insert(11, degraded);

    EvalResult clean = degraded;
    clean.degraded = false;
    memo.insert(11, clean);

    EvalResult out;
    ASSERT_TRUE(memo.lookup(11, &out));
    EXPECT_FALSE(out.degraded);

    memo.insert(11, degraded);
    ASSERT_TRUE(memo.lookup(11, &out));
    EXPECT_FALSE(out.degraded);
}

TEST(TransferSchedule, RoundTripsOntoTheSameProblem)
{
    ProblemSpec spec = makeTwoAppExample();
    EvalResult solved = evaluate(spec, exampleOptions());
    ASSERT_TRUE(solved.ok);

    DiscretizedProblem problem = discretize(spec, 1.0, 64);
    cp::ScheduleVec transferred;
    ASSERT_TRUE(transferSchedule(spec, problem, solved.schedule,
                                 &transferred));
    EXPECT_TRUE(cp::checkSchedule(problem.model, transferred).empty());
    // Re-placing an optimal schedule in its own start order cannot
    // make it longer.
    EXPECT_LE(transferred.makespan(problem.model) * problem.stepS,
              solved.makespanS + 1e-9);
}

TEST(TransferSchedule, AdaptsToAFasterNeighborConfig)
{
    // Solve the example, then transfer its schedule onto a variant
    // where every GPU option runs twice as fast - the shape of a
    // neighboring SoC with a larger GPU.
    ProblemSpec spec = makeTwoAppExample();
    EvalResult solved = evaluate(spec, exampleOptions());
    ASSERT_TRUE(solved.ok);

    ProblemSpec faster = spec;
    for (AppSpec &app : faster.apps)
        for (PhaseSpec &phase : app.phases)
            for (UnitOption &option : phase.options)
                if (option.device != kCpuPool)
                    option.timeS *= 0.5;

    DiscretizedProblem problem = discretize(faster, 1.0, 64);
    cp::ScheduleVec transferred;
    ASSERT_TRUE(transferSchedule(faster, problem, solved.schedule,
                                 &transferred));
    EXPECT_TRUE(cp::checkSchedule(problem.model, transferred).empty());
}

TEST(TransferSchedule, RejectsMismatchedPhaseStructure)
{
    ProblemSpec spec = makeTwoAppExample();
    EvalResult solved = evaluate(spec, exampleOptions());
    ASSERT_TRUE(solved.ok);

    ProblemSpec different = spec;
    different.apps.pop_back();
    DiscretizedProblem problem = discretize(different, 1.0, 64);
    cp::ScheduleVec transferred;
    EXPECT_FALSE(transferSchedule(different, problem, solved.schedule,
                                  &transferred));
}

TEST(Evaluate, WarmStartNeverWorseThanCold)
{
    ProblemSpec spec = makeTwoAppExample();
    EvalResult cold = evaluate(spec, exampleOptions());
    ASSERT_TRUE(cold.ok);

    EvalReuse reuse;
    reuse.hint = &cold.schedule;
    EvalResult warm = evaluate(spec, exampleOptions(), reuse);
    ASSERT_TRUE(warm.ok);
    EXPECT_TRUE(warm.warmStarted);
    EXPECT_LE(warm.makespanS, cold.makespanS + 1e-9);
    EXPECT_DOUBLE_EQ(warm.gap, cold.gap);
}

TEST(Evaluate, MemoServesTheSecondEvaluation)
{
    ProblemSpec spec = makeTwoAppExample();
    SolveMemo memo;
    EvalReuse reuse;
    reuse.memo = &memo;

    EvalResult first = evaluate(spec, exampleOptions(), reuse);
    ASSERT_TRUE(first.ok);
    EXPECT_FALSE(first.cacheHit);
    EXPECT_GT(first.solves, 0);

    EvalResult second = evaluate(spec, exampleOptions(), reuse);
    ASSERT_TRUE(second.ok);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_EQ(second.solves, 0);
    EXPECT_DOUBLE_EQ(second.makespanS, first.makespanS);
    EXPECT_EQ(memo.hits(), 1);
    EXPECT_EQ(memo.misses(), 1);
}

TEST(Evaluate, ContinuousBoundHoldsAtEveryResolution)
{
    // The dominance oracle's input must lower-bound the makespan at
    // any discretization, coarse or fine.
    ProblemSpec spec = makeTwoAppExample();
    double bound = continuousLowerBoundS(spec);
    EXPECT_GT(bound, 0.0);
    for (double step : {0.5, 1.0, 4.0}) {
        EngineOptions options = exampleOptions();
        options.initialStepS = step;
        options.horizonSteps = 128;
        EvalResult result = evaluate(spec, options);
        ASSERT_TRUE(result.ok) << step;
        EXPECT_GE(result.makespanS, bound - 1e-9) << step;
    }
}

TEST(Evaluate, DominanceOracleStopsRefinement)
{
    // Force a refinement-eager setup, then tell the engine the point
    // is dominated: it must return the coarse result, flagged.
    ProblemSpec spec = makeTwoAppExample();
    EngineOptions options;
    options.initialStepS = 4.0;
    options.horizonSteps = 64;
    options.refineThreshold = 16;
    options.refineFactor = 2.0;
    options.maxRefinements = 3;
    options.solver.targetGap = 0.0;

    EvalReuse reuse;
    reuse.dominated = [](double) { return true; };
    EvalResult pruned = evaluate(spec, options, reuse);
    ASSERT_TRUE(pruned.ok);
    EXPECT_TRUE(pruned.prunedEarly);
    EXPECT_EQ(pruned.refinements, 0);
    EXPECT_DOUBLE_EQ(pruned.stepS, 4.0);

    // And with an oracle that says "not dominated", refinement runs.
    reuse.dominated = [](double) { return false; };
    EvalResult refined = evaluate(spec, options, reuse);
    ASSERT_TRUE(refined.ok);
    EXPECT_FALSE(refined.prunedEarly);
    EXPECT_GT(refined.refinements, 0);
}

} // anonymous namespace
} // namespace hilp
