/**
 * @file
 * Solver microbenchmark on pinned instances. Runs the CP solver on a
 * fixed set of deterministic lowered models, reports the median wall
 * time together with the search and propagation-engine telemetry,
 * and writes the whole measurement to BENCH_solver.json so solver
 * changes can be compared run-over-run (wall time should drop or
 * node counts shrink; anything else is a regression).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common.hh"
#include "cp/solver.hh"
#include "hilp/builder.hh"
#include "hilp/discretize.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/table.hh"
#include "support/trace.hh"

namespace {

using namespace hilp;

using Clock = std::chrono::steady_clock;

constexpr int kRepeats = 5;
/** Repeats per thread count in the parallel-search sweep. */
constexpr int kSweepRepeats = 3;

/**
 * Layout sweep repetitions per layout. Higher than the feature
 * sweeps' because the packed-vs-legacy ratio gates check.sh and has
 * to hold up under ambient machine noise.
 */
constexpr int kLayoutRepeats = 5;
constexpr int kSweepThreads[] = {1, 2, 4, 8};

struct Instance
{
    std::string name;
    cp::Model model;
    cp::SolverOptions options;
};

/**
 * Pinned instances: deterministic workload, SoC shape, resolution,
 * and solver budget, covering the regimes the DSE sweep exercises -
 * a proof-heavy exact solve, an exploration-budget near-optimal
 * solve, and a tightly power-constrained one.
 */
std::vector<Instance>
makeInstances()
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto priority = workload::dsaPriorityOrder();

    std::vector<Instance> instances;
    {
        arch::SocConfig soc;
        soc.cpuCores = 4;
        soc.gpuSms = 16;
        soc.dsas = {{16, priority[0]}, {16, priority[1]}};
        ProblemSpec spec = buildProblem(wl, soc, arch::Constraints{});
        cp::SolverOptions options;
        options.maxSeconds = 2.0;
        options.targetGap = 0.0; // Search for a proven optimum.
        instances.push_back({"exact (c4,g16,d2^16)",
                             discretize(spec, 2.0, 1000).model,
                             options});
    }
    {
        arch::SocConfig soc;
        soc.cpuCores = 2;
        soc.gpuSms = 32;
        ProblemSpec spec = buildProblem(wl, soc, arch::Constraints{});
        cp::SolverOptions options;
        options.maxSeconds = 1.0;
        options.targetGap = 0.10; // Exploration budget.
        instances.push_back({"explore (c2,g32,d0^0)",
                             discretize(spec, 2.0, 1000).model,
                             options});
    }
    {
        arch::Constraints constraints;
        constraints.powerBudgetW = 50.0;
        arch::SocConfig soc;
        soc.cpuCores = 4;
        soc.gpuSms = 64;
        ProblemSpec spec = buildProblem(
            workload::makeWorkload(workload::Variant::Optimized),
            soc, constraints);
        cp::SolverOptions options;
        options.maxSeconds = 2.0;
        options.targetGap = 0.0;
        instances.push_back({"50 W (c4,g64,d0^0)",
                             discretize(spec, 2.0, 1000).model,
                             options});
    }
    {
        // Exploration budget on a power-constrained shape whose
        // greedy misses the 10% bar: the search tree is dense with
        // revisited placement sets, which is the regime the no-good
        // layer targets (the trivial explore instance above never
        // enters the tree at all).
        arch::Constraints constraints;
        constraints.powerBudgetW = 50.0;
        arch::SocConfig soc;
        soc.cpuCores = 4;
        soc.gpuSms = 64;
        ProblemSpec spec = buildProblem(wl, soc, constraints);
        cp::SolverOptions options;
        options.maxSeconds = 8.0;
        options.maxNodes = 1000000;
        options.targetGap = 0.10;
        instances.push_back({"explore-hard (c4,g64,50W)",
                             discretize(spec, 2.0, 1000).model,
                             options});
    }
    // Harness-wide solver flags apply to the headline measurements
    // too (the thread sweep overrides threads per entry).
    for (Instance &instance : instances) {
        instance.options.threads = hilp::bench::solverThreads();
        instance.options.deterministicSearch =
            hilp::bench::deterministicSearch();
        instance.options.packedLayout = hilp::bench::packedLayout();
    }
    return instances;
}

struct Measurement
{
    std::string name;
    double medianS = 0.0;
    cp::Result result;
};

Measurement
measure(const Instance &instance)
{
    Measurement m;
    m.name = instance.name;
    std::vector<double> times;
    for (int rep = 0; rep < kRepeats; ++rep) {
        cp::Solver solver(instance.options);
        Clock::time_point t0 = Clock::now();
        cp::Result result = solver.solve(instance.model);
        times.push_back(std::chrono::duration<double>(
            Clock::now() - t0).count());
        // The solver is deterministic: every repeat explores the
        // same tree, so the telemetry of the last run stands in for
        // all of them.
        m.result = std::move(result);
    }
    std::sort(times.begin(), times.end());
    m.medianS = times[times.size() / 2];
    return m;
}

struct ThreadSweepEntry
{
    int threads = 1;
    double medianS = 0.0;
    double speedup = 1.0; //!< Serial median / this median.
    cp::Time makespan = 0;
    cp::SolveStatus status = cp::SolveStatus::NoSolution;
    int64_t nodes = 0;
    int64_t steals = 0;
};

struct ThreadSweep
{
    std::string name;
    std::vector<ThreadSweepEntry> entries;
};

/**
 * Parallel-search scaling on the hard (targetGap == 0) instances:
 * the same solve at 1/2/4/8 worker threads. The makespan and status
 * must not move across thread counts — the parallel search explores
 * a different node set but proves the same optimum — so the sweep
 * doubles as an end-to-end differential check, and the speedup
 * column is the headline number for the work-stealing layer.
 */
std::vector<ThreadSweep>
measureThreadSweep(const std::vector<Instance> &instances)
{
    std::vector<ThreadSweep> sweeps;
    for (const Instance &instance : instances) {
        if (instance.options.targetGap > 0.0)
            continue; // Gap-budget solves can stop early; skip.
        ThreadSweep sweep;
        sweep.name = instance.name;
        double serial_median = 0.0;
        for (int threads : kSweepThreads) {
            cp::SolverOptions options = instance.options;
            options.threads = threads;
            options.deterministicSearch =
                hilp::bench::deterministicSearch();
            std::vector<double> times;
            ThreadSweepEntry entry;
            entry.threads = threads;
            for (int rep = 0; rep < kSweepRepeats; ++rep) {
                cp::Solver solver(options);
                Clock::time_point t0 = Clock::now();
                cp::Result result = solver.solve(instance.model);
                times.push_back(std::chrono::duration<double>(
                    Clock::now() - t0).count());
                entry.makespan = result.makespan;
                entry.status = result.status;
                entry.nodes = result.stats.nodes;
                entry.steals = result.stats.steals;
            }
            std::sort(times.begin(), times.end());
            entry.medianS = times[times.size() / 2];
            if (threads == 1)
                serial_median = entry.medianS;
            entry.speedup = entry.medianS > 0.0
                ? serial_median / entry.medianS : 1.0;
            sweep.entries.push_back(entry);
        }
        sweeps.push_back(std::move(sweep));
    }
    return sweeps;
}

struct FeatureSweepEntry
{
    std::string feature;
    double medianS = 0.0;
    double speedup = 1.0; //!< Base median / this median.
    cp::Time makespan = 0;
    cp::Time lowerBound = 0;
    double gap = 0.0;
    cp::SolveStatus status = cp::SolveStatus::NoSolution;
    int64_t nodes = 0;
    int64_t nogoodHits = 0;
    int64_t lnsIterations = 0;
};

struct FeatureSweep
{
    std::string name;
    double targetGap = 0.0;
    std::vector<FeatureSweepEntry> entries;
};

/**
 * Solver-feature sweep over every pinned instance: the same solve
 * with no-good learning and LNS off (base), each alone, and both
 * together. Both features are pruning/incumbent improvements, never
 * relaxations, so the sweep doubles as a soundness gate: an exact
 * instance must keep its proven optimum, and a gap-budget instance
 * must still reach any gap the base run reached. A violation fails
 * the benchmark (exit 1). The speedup column against the base run
 * is the headline number for the learning layer.
 */
std::vector<FeatureSweep>
measureFeatureSweep(const std::vector<Instance> &instances)
{
    struct Feature
    {
        const char *name;
        bool nogoods;
        bool lns;
    };
    static const Feature kFeatures[] = {
        {"base", false, false},
        {"nogoods", true, false},
        {"lns", false, true},
        {"nogoods+lns", true, true},
    };

    std::vector<FeatureSweep> sweeps;
    for (const Instance &instance : instances) {
        FeatureSweep sweep;
        sweep.name = instance.name;
        sweep.targetGap = instance.options.targetGap;
        double base_median = 0.0;
        for (const Feature &feature : kFeatures) {
            cp::SolverOptions options = instance.options;
            options.useNogoods = feature.nogoods;
            options.lns = feature.lns;
            std::vector<double> times;
            FeatureSweepEntry entry;
            entry.feature = feature.name;
            for (int rep = 0; rep < kSweepRepeats; ++rep) {
                cp::Solver solver(options);
                Clock::time_point t0 = Clock::now();
                cp::Result result = solver.solve(instance.model);
                times.push_back(std::chrono::duration<double>(
                    Clock::now() - t0).count());
                entry.makespan = result.makespan;
                entry.lowerBound = result.lowerBound;
                entry.gap = result.gap();
                entry.status = result.status;
                entry.nodes = result.stats.nodes;
                entry.nogoodHits = result.stats.nogoodHits;
                entry.lnsIterations = result.stats.lnsIterationsRun;
            }
            std::sort(times.begin(), times.end());
            entry.medianS = times[times.size() / 2];
            if (std::strcmp(feature.name, "base") == 0)
                base_median = entry.medianS;
            entry.speedup = entry.medianS > 0.0
                ? base_median / entry.medianS : 1.0;
            sweep.entries.push_back(std::move(entry));
        }
        sweeps.push_back(std::move(sweep));
    }
    return sweeps;
}

/**
 * The feature sweep's soundness gate. No-goods and LNS must never
 * cost solution quality: at targetGap == 0 a base-proven optimum
 * must survive every feature combination (same makespan, still
 * optimal), and at a gap budget every feature run must reach any
 * certified gap the base run reached.
 */
bool
verifyFeatureSweep(const std::vector<FeatureSweep> &sweeps)
{
    bool sound = true;
    for (const FeatureSweep &sweep : sweeps) {
        const FeatureSweepEntry &base = sweep.entries.front();
        for (const FeatureSweepEntry &e : sweep.entries) {
            if (sweep.targetGap == 0.0 &&
                base.status == cp::SolveStatus::Optimal &&
                (e.status != cp::SolveStatus::Optimal ||
                 e.makespan != base.makespan)) {
                std::fprintf(stderr,
                             "FEATURE SWEEP UNSOUND: %s with %s "
                             "got makespan %d (%s), base proved "
                             "optimum %d\n",
                             sweep.name.c_str(), e.feature.c_str(),
                             e.makespan, cp::toString(e.status),
                             base.makespan);
                sound = false;
            }
            if (sweep.targetGap > 0.0 &&
                base.gap <= sweep.targetGap + 1e-12 &&
                e.gap > sweep.targetGap + 1e-12) {
                std::fprintf(stderr,
                             "FEATURE SWEEP REGRESSION: %s with %s "
                             "certified gap %.3f misses the %.3f "
                             "target the base run met\n",
                             sweep.name.c_str(), e.feature.c_str(),
                             e.gap, sweep.targetGap);
                sound = false;
            }
        }
    }
    return sound;
}

struct LayoutSweepEntry
{
    std::string layout;
    double medianS = 0.0;
    double speedup = 1.0; //!< Legacy median / this median.
    cp::Time makespan = 0;
    cp::Time lowerBound = 0;
    double gap = 0.0;
    cp::SolveStatus status = cp::SolveStatus::NoSolution;
    int64_t nodes = 0;
    int64_t backtracks = 0;
    int64_t scratchBytes = 0;
    int64_t arenaRewinds = 0;
};

struct LayoutSweep
{
    std::string name;
    double targetGap = 0.0;
    double maxSeconds = 0.0;
    std::vector<LayoutSweepEntry> entries;
};

/**
 * Memory-layout sweep over every pinned instance: the same pure
 * branch-and-bound solve (no-goods and LNS off, one thread, so the
 * tree shape is deterministic) with the legacy AoS profile and
 * per-node heap scratch vs the packed layout - arena-backed trail,
 * SoA profile slab, and allocation-free search loops. The layouts
 * are pure memory-representation changes, so both runs must explore
 * the bit-identical tree; the speedup column against the legacy run
 * is the headline number for the cache-conscious core, and the
 * packed run's scratch growth divided by its node count shows the
 * steady-state bytes allocated per node (zero once the pools warm
 * up).
 */
std::vector<LayoutSweep>
measureLayoutSweep(const std::vector<Instance> &instances)
{
    static const char *kLayouts[] = {"legacy", "packed"};

    std::vector<LayoutSweep> sweeps;
    for (const Instance &instance : instances) {
        LayoutSweep sweep;
        sweep.name = instance.name;
        sweep.targetGap = instance.options.targetGap;
        sweep.maxSeconds = instance.options.maxSeconds;
        // Interleave the layouts' repetitions (legacy, packed,
        // legacy, packed, ...) so ambient load drift hits both
        // layouts symmetrically instead of biasing whichever block
        // happened to run while the machine was busy.
        std::vector<double> times[2];
        LayoutSweepEntry entries[2];
        for (int rep = 0; rep < kLayoutRepeats; ++rep) {
            for (int li = 0; li < 2; ++li) {
                cp::SolverOptions options = instance.options;
                options.useNogoods = false;
                options.lns = false;
                options.threads = 1;
                options.packedLayout = li == 1;
                LayoutSweepEntry &entry = entries[li];
                entry.layout = kLayouts[li];
                cp::Solver solver(options);
                Clock::time_point t0 = Clock::now();
                cp::Result result = solver.solve(instance.model);
                times[li].push_back(std::chrono::duration<double>(
                    Clock::now() - t0).count());
                entry.makespan = result.makespan;
                entry.lowerBound = result.lowerBound;
                entry.gap = result.gap();
                entry.status = result.status;
                entry.nodes = result.stats.nodes;
                entry.backtracks = result.stats.backtracks;
                entry.scratchBytes = result.stats.scratchBytes;
                entry.arenaRewinds = result.stats.arenaRewinds;
            }
        }
        for (int li = 0; li < 2; ++li) {
            std::sort(times[li].begin(), times[li].end());
            entries[li].medianS = times[li][times[li].size() / 2];
        }
        for (int li = 0; li < 2; ++li) {
            entries[li].speedup = entries[li].medianS > 0.0
                ? entries[0].medianS / entries[li].medianS : 1.0;
            sweep.entries.push_back(std::move(entries[li]));
        }
        sweeps.push_back(std::move(sweep));
    }
    return sweeps;
}

/**
 * The layout sweep's bit-identity gate. A memory layout is not
 * allowed to change what the solver computes: makespan and status
 * must match between the legacy and packed runs, always. Node and
 * backtrack counts must match too whenever neither run was cut off
 * by the wall clock (a deadline can land mid-node, so counts of
 * clock-limited runs differ by scheduling noise; the rigorous
 * tree-identity check on deterministic models lives in
 * tests/cp/test_search.cc).
 */
bool
verifyLayoutSweep(const std::vector<LayoutSweep> &sweeps)
{
    bool sound = true;
    for (const LayoutSweep &sweep : sweeps) {
        const LayoutSweepEntry &legacy = sweep.entries.front();
        double slowest = 0.0;
        for (const LayoutSweepEntry &e : sweep.entries)
            slowest = std::max(slowest, e.medianS);
        bool untimed = slowest < 0.8 * sweep.maxSeconds;
        for (const LayoutSweepEntry &e : sweep.entries) {
            if (e.makespan != legacy.makespan ||
                e.status != legacy.status) {
                std::fprintf(stderr,
                             "LAYOUT SWEEP UNSOUND: %s with %s "
                             "layout got makespan %d (%s), legacy "
                             "got %d (%s)\n",
                             sweep.name.c_str(), e.layout.c_str(),
                             e.makespan, cp::toString(e.status),
                             legacy.makespan,
                             cp::toString(legacy.status));
                sound = false;
            }
            if (untimed && (e.nodes != legacy.nodes ||
                            e.backtracks != legacy.backtracks)) {
                std::fprintf(stderr,
                             "LAYOUT SWEEP TREE MISMATCH: %s with "
                             "%s layout explored %lld nodes / %lld "
                             "backtracks, legacy %lld / %lld\n",
                             sweep.name.c_str(), e.layout.c_str(),
                             static_cast<long long>(e.nodes),
                             static_cast<long long>(e.backtracks),
                             static_cast<long long>(legacy.nodes),
                             static_cast<long long>(
                                 legacy.backtracks));
                sound = false;
            }
        }
    }
    return sound;
}

struct TraceOverhead
{
    double disabledS = 0.0;
    double enabledS = 0.0;
};

/**
 * Median wall time of one instance with tracing off vs on. The
 * interesting number is the disabled cost (instrumentation compiled
 * in but not recording), which the observability layer promises
 * stays within noise of an uninstrumented build; the enabled cost
 * shows what actually recording a trace adds.
 */
TraceOverhead
measureTraceOverhead(const Instance &instance)
{
    bool was_enabled = trace::enabled();
    auto median = [&](bool enable) {
        trace::setEnabled(enable);
        std::vector<double> times;
        for (int rep = 0; rep < kRepeats; ++rep) {
            cp::Solver solver(instance.options);
            Clock::time_point t0 = Clock::now();
            cp::Result result = solver.solve(instance.model);
            benchmark::DoNotOptimize(result.makespan);
            times.push_back(std::chrono::duration<double>(
                Clock::now() - t0).count());
        }
        std::sort(times.begin(), times.end());
        return times[times.size() / 2];
    };
    TraceOverhead overhead;
    overhead.disabledS = median(false);
    overhead.enabledS = median(true);
    trace::setEnabled(was_enabled);
    if (!was_enabled) {
        // Nobody will export these probe events: drop them so a later
        // --trace-out run is not polluted.
        trace::clearAll();
    }
    return overhead;
}

struct TelemetryOverhead
{
    double disabledS = 0.0;
    double enabledS = 0.0;

    double
    ratio() const
    {
        return disabledS > 0.0 ? enabledS / disabledS : 1.0;
    }
};

/**
 * Median wall time of one instance with the full daemon telemetry
 * stack off vs on: ring-buffered tracing, a request trace context
 * and span, and the per-request metric updates hilpd publishes for
 * every served request. hilpd runs every solve in exactly this
 * configuration (daemon mode records into the trace ring
 * unconditionally, for the flight recorder's slow-request capture),
 * so this is the number the observability layer's overhead budget is
 * about. The probe is the power-constrained exact instance - long
 * enough (~0.5 s) that the ratio is not timer noise.
 */
TelemetryOverhead
measureTelemetryOverhead(const Instance &instance)
{
    bool was_enabled = trace::enabled();
    auto run = [&](bool enable) {
        trace::setRingBuffered(enable);
        trace::setEnabled(enable);
        cp::Solver solver(instance.options);
        Clock::time_point t0 = Clock::now();
        {
            trace::ContextScope request(
                enable ? trace::newTraceId() : 0);
            trace::Span span("telemetry_probe.request");
            cp::Result result = solver.solve(instance.model);
            benchmark::DoNotOptimize(result.makespan);
        }
        double elapsed = std::chrono::duration<double>(
            Clock::now() - t0).count();
        if (enable) {
            // The same per-request registry updates
            // Daemon::finishRequest makes.
            metrics::counter("telemetry_probe.requests").add(1);
            metrics::histogram("telemetry_probe.total_us")
                .record(static_cast<int64_t>(elapsed * 1e6));
        }
        return elapsed;
    };
    // Interleave the off/on repetitions so ambient load drift hits
    // both sides symmetrically - the gate below compares their
    // ratio, which a busy block on one side would silently skew.
    std::vector<double> off_times;
    std::vector<double> on_times;
    for (int rep = 0; rep < kLayoutRepeats; ++rep) {
        off_times.push_back(run(false));
        on_times.push_back(run(true));
    }
    trace::setRingBuffered(false);
    trace::setEnabled(was_enabled);
    if (!was_enabled)
        trace::clearAll();
    std::sort(off_times.begin(), off_times.end());
    std::sort(on_times.begin(), on_times.end());
    TelemetryOverhead overhead;
    overhead.disabledS = off_times[off_times.size() / 2];
    overhead.enabledS = on_times[on_times.size() / 2];
    return overhead;
}

void
emitReport(const std::vector<Measurement> &measurements,
           const TraceOverhead &overhead,
           const TelemetryOverhead &telemetry,
           const std::vector<ThreadSweep> &sweeps,
           const std::vector<FeatureSweep> &features,
           const std::vector<LayoutSweep> &layouts)
{
    bench::banner(
        "Solver microbenchmark - pinned instances",
        "Median-of-5 wall time plus search and propagation-engine\n"
        "telemetry on fixed lowered models; the same numbers are\n"
        "written to BENCH_solver.json for run-over-run comparison.");

    Table table({"instance", "median (ms)", "nodes", "backtracks",
                 "gap", "status"});
    table.setAlign(0, Table::Align::Left);
    for (const Measurement &m : measurements) {
        table.addRow(RowBuilder()
                         .cell(m.name)
                         .cell(m.medianS * 1e3, 2)
                         .cell(m.result.stats.nodes)
                         .cell(m.result.stats.backtracks)
                         .cell(m.result.gap(), 3)
                         .cell(std::string(
                             cp::toString(m.result.status)))
                         .take());
    }
    table.print();

    for (const Measurement &m : measurements) {
        std::printf("%s propagators:", m.name.c_str());
        for (const cp::PropagatorStats &p :
             m.result.stats.propagators) {
            std::printf(" %s %lld inv / %lld prune",
                        p.name.c_str(),
                        static_cast<long long>(p.invocations),
                        static_cast<long long>(p.prunings));
        }
        std::printf("\n");
    }

    Json instances = Json::array();
    int64_t total_nodes = 0;
    double total_median_s = 0.0;
    for (const Measurement &m : measurements) {
        Json entry = Json::object();
        entry.set("name", Json::string(m.name));
        entry.set("median_s", Json::number(m.medianS));
        entry.set("status", Json::string(
            cp::toString(m.result.status)));
        entry.set("makespan_steps", Json::number(
            static_cast<int64_t>(m.result.makespan)));
        entry.set("lower_bound_steps", Json::number(
            static_cast<int64_t>(m.result.lowerBound)));
        entry.set("gap", Json::number(m.result.gap()));
        entry.set("nodes", Json::number(m.result.stats.nodes));
        entry.set("backtracks", Json::number(
            m.result.stats.backtracks));
        Json propagators = Json::array();
        for (const cp::PropagatorStats &p :
             m.result.stats.propagators) {
            Json prop = Json::object();
            prop.set("name", Json::string(p.name));
            prop.set("invocations", Json::number(p.invocations));
            prop.set("prunings", Json::number(p.prunings));
            prop.set("seconds", Json::number(p.seconds));
            propagators.append(std::move(prop));
        }
        entry.set("propagators", std::move(propagators));
        instances.append(std::move(entry));
        total_nodes += m.result.stats.nodes;
        total_median_s += m.medianS;
    }
    Json report = Json::object();
    report.set("benchmark", Json::string("solver_micro"));
    report.set("repeats", Json::number(
        static_cast<int64_t>(kRepeats)));
    report.set("instances", std::move(instances));
    Json totals = Json::object();
    totals.set("median_s", Json::number(total_median_s));
    totals.set("nodes", Json::number(total_nodes));
    report.set("totals", std::move(totals));

    if (!sweeps.empty()) {
        Table sweep_table({"instance", "threads", "median (ms)",
                           "speedup", "steals", "status"});
        sweep_table.setAlign(0, Table::Align::Left);
        Json sweep_json = Json::array();
        double speedup8_product = 1.0;
        int speedup8_count = 0;
        for (const ThreadSweep &sweep : sweeps) {
            Json entry = Json::object();
            entry.set("name", Json::string(sweep.name));
            Json rows = Json::array();
            for (const ThreadSweepEntry &e : sweep.entries) {
                sweep_table.addRow(
                    RowBuilder()
                        .cell(sweep.name)
                        .cell(static_cast<int64_t>(e.threads))
                        .cell(e.medianS * 1e3, 2)
                        .cell(e.speedup, 2)
                        .cell(e.steals)
                        .cell(std::string(cp::toString(e.status)))
                        .take());
                Json row = Json::object();
                row.set("threads", Json::number(
                    static_cast<int64_t>(e.threads)));
                row.set("median_s", Json::number(e.medianS));
                row.set("speedup", Json::number(e.speedup));
                row.set("makespan_steps", Json::number(
                    static_cast<int64_t>(e.makespan)));
                row.set("status", Json::string(
                    cp::toString(e.status)));
                row.set("nodes", Json::number(e.nodes));
                row.set("steals", Json::number(e.steals));
                rows.append(std::move(row));
                if (e.threads == 8) {
                    speedup8_product *= e.speedup;
                    ++speedup8_count;
                }
            }
            entry.set("entries", std::move(rows));
            sweep_json.append(std::move(entry));
        }
        bench::section("parallel search thread sweep (hard instances)");
        sweep_table.print();
        report.set("thread_sweep", std::move(sweep_json));
        if (speedup8_count > 0) {
            double speedup8 = std::pow(
                speedup8_product, 1.0 / speedup8_count);
            report.set("speedup_8t_geomean",
                       Json::number(speedup8));
            std::printf("8-thread speedup (geomean over %d hard "
                        "instances): %.2fx\n", speedup8_count,
                        speedup8);
        }
    }

    if (!features.empty()) {
        Table feature_table({"instance", "feature", "median (ms)",
                             "speedup", "gap", "ng hits", "status"});
        feature_table.setAlign(0, Table::Align::Left);
        feature_table.setAlign(1, Table::Align::Left);
        Json feature_json = Json::array();
        double both_product = 1.0;
        int both_count = 0;
        double explore_product = 1.0;
        int explore_count = 0;
        for (const FeatureSweep &sweep : features) {
            Json entry = Json::object();
            entry.set("name", Json::string(sweep.name));
            entry.set("target_gap", Json::number(sweep.targetGap));
            Json rows = Json::array();
            for (const FeatureSweepEntry &e : sweep.entries) {
                feature_table.addRow(
                    RowBuilder()
                        .cell(sweep.name)
                        .cell(e.feature)
                        .cell(e.medianS * 1e3, 2)
                        .cell(e.speedup, 2)
                        .cell(e.gap, 3)
                        .cell(e.nogoodHits)
                        .cell(std::string(cp::toString(e.status)))
                        .take());
                Json row = Json::object();
                row.set("feature", Json::string(e.feature));
                row.set("median_s", Json::number(e.medianS));
                row.set("speedup", Json::number(e.speedup));
                row.set("makespan_steps", Json::number(
                    static_cast<int64_t>(e.makespan)));
                row.set("lower_bound_steps", Json::number(
                    static_cast<int64_t>(e.lowerBound)));
                row.set("gap", Json::number(e.gap));
                row.set("status", Json::string(
                    cp::toString(e.status)));
                row.set("nodes", Json::number(e.nodes));
                row.set("nogood_hits", Json::number(e.nogoodHits));
                row.set("lns_iterations", Json::number(
                    e.lnsIterations));
                rows.append(std::move(row));
                if (e.feature == "nogoods+lns") {
                    both_product *= e.speedup;
                    ++both_count;
                    // The explore-class gate rates instances where
                    // the base run actually searched: a solve whose
                    // greedy already meets the gap (0 nodes) has no
                    // tree for the learning layer to accelerate.
                    if (sweep.targetGap > 0.0 &&
                        sweep.entries.front().nodes > 0) {
                        explore_product *= e.speedup;
                        ++explore_count;
                    }
                }
            }
            entry.set("entries", std::move(rows));
            feature_json.append(std::move(entry));
        }
        bench::section("solver feature sweep (nogoods / LNS)");
        feature_table.print();
        report.set("feature_sweep", std::move(feature_json));
        if (both_count > 0) {
            double both = std::pow(both_product, 1.0 / both_count);
            report.set("speedup_nogood_lns", Json::number(both));
            std::printf("nogoods+LNS speedup (geomean over %d "
                        "instances): %.2fx\n", both_count, both);
        }
        if (explore_count > 0) {
            double explore = std::pow(
                explore_product, 1.0 / explore_count);
            report.set("speedup_nogood_lns_explore",
                       Json::number(explore));
            std::printf("nogoods+LNS explore-class speedup (geomean "
                        "over %d searched instances): %.2fx\n",
                        explore_count, explore);
        }
    }

    if (!layouts.empty()) {
        Table layout_table({"instance", "layout", "median (ms)",
                            "speedup", "nodes", "scratch B",
                            "status"});
        layout_table.setAlign(0, Table::Align::Left);
        layout_table.setAlign(1, Table::Align::Left);
        Json layout_json = Json::array();
        double explore_product = 1.0;
        int explore_count = 0;
        int64_t packed_scratch = 0;
        int64_t packed_nodes = 0;
        for (const LayoutSweep &sweep : layouts) {
            Json entry = Json::object();
            entry.set("name", Json::string(sweep.name));
            entry.set("target_gap", Json::number(sweep.targetGap));
            Json rows = Json::array();
            for (const LayoutSweepEntry &e : sweep.entries) {
                layout_table.addRow(
                    RowBuilder()
                        .cell(sweep.name)
                        .cell(e.layout)
                        .cell(e.medianS * 1e3, 2)
                        .cell(e.speedup, 2)
                        .cell(e.nodes)
                        .cell(e.scratchBytes)
                        .cell(std::string(cp::toString(e.status)))
                        .take());
                Json row = Json::object();
                row.set("layout", Json::string(e.layout));
                row.set("median_s", Json::number(e.medianS));
                row.set("speedup", Json::number(e.speedup));
                row.set("makespan_steps", Json::number(
                    static_cast<int64_t>(e.makespan)));
                row.set("lower_bound_steps", Json::number(
                    static_cast<int64_t>(e.lowerBound)));
                row.set("gap", Json::number(e.gap));
                row.set("status", Json::string(
                    cp::toString(e.status)));
                row.set("nodes", Json::number(e.nodes));
                row.set("backtracks", Json::number(e.backtracks));
                row.set("scratch_bytes", Json::number(
                    e.scratchBytes));
                row.set("arena_rewinds", Json::number(
                    e.arenaRewinds));
                rows.append(std::move(row));
                if (e.layout == "packed") {
                    packed_scratch += e.scratchBytes;
                    packed_nodes += e.nodes;
                    // The explore-class gate rates instances where
                    // the base run actually searched (same policy as
                    // the feature sweep's headline number).
                    if (sweep.targetGap > 0.0 &&
                        sweep.entries.front().nodes > 0) {
                        explore_product *= e.speedup;
                        ++explore_count;
                    }
                }
            }
            entry.set("entries", std::move(rows));
            layout_json.append(std::move(entry));
        }
        bench::section("memory layout sweep (packed vs legacy)");
        layout_table.print();
        report.set("layout_sweep", std::move(layout_json));
        if (explore_count > 0) {
            double explore = std::pow(
                explore_product, 1.0 / explore_count);
            report.set("speedup_layout_explore",
                       Json::number(explore));
            std::printf("packed-layout explore-class speedup "
                        "(geomean over %d searched instances): "
                        "%.2fx\n", explore_count, explore);
        }
        if (packed_nodes > 0) {
            double per_node = static_cast<double>(packed_scratch) /
                static_cast<double>(packed_nodes);
            report.set("alloc_bytes_per_node",
                       Json::number(per_node));
            std::printf("packed-layout heap growth per node (pool "
                        "warm-up amortized over %lld nodes): %.4f "
                        "bytes\n",
                        static_cast<long long>(packed_nodes),
                        per_node);
        }
    }

    double ratio = overhead.disabledS > 0.0
        ? overhead.enabledS / overhead.disabledS : 1.0;
    Json trace_overhead = Json::object();
    trace_overhead.set("disabled_s", Json::number(overhead.disabledS));
    trace_overhead.set("enabled_s", Json::number(overhead.enabledS));
    trace_overhead.set("ratio", Json::number(ratio));
    report.set("trace_overhead", std::move(trace_overhead));
    std::printf("trace overhead (explore instance): %.2fms off, "
                "%.2fms on (%.2fx)\n", overhead.disabledS * 1e3,
                overhead.enabledS * 1e3, ratio);

    Json telemetry_overhead = Json::object();
    telemetry_overhead.set("disabled_s",
                           Json::number(telemetry.disabledS));
    telemetry_overhead.set("enabled_s",
                           Json::number(telemetry.enabledS));
    telemetry_overhead.set("ratio", Json::number(telemetry.ratio()));
    report.set("telemetry_overhead", std::move(telemetry_overhead));
    std::printf("daemon telemetry overhead (50 W instance): %.2fms "
                "off, %.2fms on (%.2fx)\n",
                telemetry.disabledS * 1e3, telemetry.enabledS * 1e3,
                telemetry.ratio());

    std::ofstream file("BENCH_solver.json");
    file << report.dump(2) << "\n";
    std::printf("wrote BENCH_solver.json (total median %.3fs, "
                "%lld nodes)\n", total_median_s,
                static_cast<long long>(total_nodes));
}

void
BM_SolveExact(benchmark::State &state)
{
    auto instances = makeInstances();
    for (auto _ : state) {
        cp::Result result =
            cp::Solver(instances[0].options).solve(instances[0].model);
        benchmark::DoNotOptimize(result.makespan);
    }
}
BENCHMARK(BM_SolveExact)->Unit(benchmark::kMillisecond)->Iterations(3);

void
BM_SolveExplore(benchmark::State &state)
{
    auto instances = makeInstances();
    for (auto _ : state) {
        cp::Result result =
            cp::Solver(instances[1].options).solve(instances[1].model);
        benchmark::DoNotOptimize(result.makespan);
    }
}
BENCHMARK(BM_SolveExplore)->Unit(benchmark::kMillisecond)->Iterations(3);

} // anonymous namespace

int
main(int argc, char **argv)
{
    // --no-thread-sweep skips the 1/2/4/8-thread scaling pass,
    // --no-feature-sweep the nogood/LNS feature matrix, and
    // --no-layout-sweep the packed-vs-legacy memory-layout pass
    // (used by quick smoke runs, e.g. the trace check in
    // scripts/check.sh).
    bool thread_sweep = true;
    bool feature_sweep = true;
    bool layout_sweep = true;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-thread-sweep") == 0)
            thread_sweep = false;
        else if (std::strcmp(argv[i], "--no-feature-sweep") == 0)
            feature_sweep = false;
        else if (std::strcmp(argv[i], "--no-layout-sweep") == 0)
            layout_sweep = false;
        else
            argv[kept++] = argv[i];
    }
    argc = kept;
    hilp::bench::initHarness(&argc, argv);
    auto instances = makeInstances();
    std::vector<Measurement> measurements;
    for (const Instance &instance : instances)
        measurements.push_back(measure(instance));
    // The explore-budget instance is the overhead probe: it is the
    // regime the DSE sweep runs in, where trace cost matters most.
    TraceOverhead overhead = measureTraceOverhead(instances[1]);
    // The power-constrained exact instance probes the full daemon
    // telemetry stack (ring tracing + context + request metrics).
    TelemetryOverhead telemetry =
        measureTelemetryOverhead(instances[2]);
    std::vector<ThreadSweep> sweeps;
    if (thread_sweep)
        sweeps = measureThreadSweep(instances);
    std::vector<FeatureSweep> features;
    if (feature_sweep)
        features = measureFeatureSweep(instances);
    std::vector<LayoutSweep> layouts;
    if (layout_sweep)
        layouts = measureLayoutSweep(instances);
    emitReport(measurements, overhead, telemetry, sweeps, features,
               layouts);
    if (!verifyFeatureSweep(features))
        return 1;
    if (!verifyLayoutSweep(layouts))
        return 1;
    // Telemetry overhead gate. The original budget (3% warn / 10%
    // fail) was derived against a ~780 ms probe solve; the packed
    // memory layout roughly halved that baseline, so the *same*
    // absolute instrumentation cost (~25 ms of ring writes and
    // metric updates per 500k-node request) now reads about twice
    // as large relative. Re-derived against the faster baseline:
    // warn past 8%, fail past 15% - the absolute budget is
    // unchanged.
    if (telemetry.ratio() > 1.15) {
        std::fprintf(stderr,
                     "TELEMETRY OVERHEAD REGRESSION: %.2fx with the "
                     "daemon stack enabled exceeds the 1.15x cap\n",
                     telemetry.ratio());
        return 1;
    }
    if (telemetry.ratio() > 1.08)
        std::fprintf(stderr,
                     "telemetry overhead warning: %.2fx is past the "
                     "1.08x budget (cap 1.15x)\n",
                     telemetry.ratio());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
