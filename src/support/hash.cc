#include "hash.hh"

#include <cstring>

namespace hilp {

void
Hasher::bytes(const void *data, size_t size)
{
    constexpr uint64_t prime = 1099511628211ull;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        state_ ^= p[i];
        state_ *= prime;
    }
}

void
Hasher::u64(uint64_t value)
{
    bytes(&value, sizeof(value));
}

void
Hasher::f64(double value)
{
    if (value == 0.0)
        value = 0.0; // Collapse -0.0 onto +0.0.
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
}

void
Hasher::str(const std::string &value)
{
    u64(value.size());
    bytes(value.data(), value.size());
}

} // namespace hilp
