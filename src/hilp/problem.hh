/**
 * @file
 * HILP's continuous-time problem specification.
 *
 * A ProblemSpec is the paper's set of input matrices in structured
 * form. For every application phase it lists the unit options the
 * phase may execute on (the compatibility matrix E together with one
 * row of T, B, P, and U per compatible core cluster and operating
 * point), plus the chip-wide budgets p_max, b_max, and the CPU core
 * count u_max. Times are in seconds here; the engine discretizes to
 * integer time steps per Section III-D before solving.
 */

#ifndef HILP_HILP_PROBLEM_HH
#define HILP_HILP_PROBLEM_HH

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace hilp {

/** Device id of the shared CPU core pool (not a disjunctive device). */
inline constexpr int kCpuPool = -1;

/** Unlimited budget value for power/bandwidth. */
inline constexpr double kUnlimited =
    std::numeric_limits<double>::infinity();

/**
 * One admissible execution of a phase: a core cluster at one
 * operating point. This is a column of the paper's T/B/P/U matrices
 * restricted to the clusters where E is 1.
 */
struct UnitOption
{
    std::string label;    //!< E.g. "CPUx4", "GPU@765", "DSA:HS@300".
    int device = kCpuPool; //!< Disjunctive device id, or kCpuPool.
    double timeS = 0.0;   //!< Execution time (T entry), seconds.
    double bwGBs = 0.0;   //!< Memory bandwidth demand (B entry).
    double powerW = 0.0;  //!< Power draw while active (P entry).
    double cpuCores = 0.0; //!< CPU cores occupied (U entry).
    /**
     * Demand on each user-defined extra resource (Section VII:
     * e.g. per-cache-level bandwidth). Indexed like
     * ProblemSpec::extraResources; missing entries mean zero.
     */
    std::vector<double> extraUsage;
};

/**
 * A user-defined cumulative resource beyond the built-in power,
 * bandwidth, and CPU-core budgets - the Section VII mechanism for
 * modeling e.g. L2/LLC bandwidth limits.
 */
struct ExtraResource
{
    std::string name;
    double capacity = 0.0;
};

/** One application phase and its admissible unit options. */
struct PhaseSpec
{
    std::string name;
    std::vector<UnitOption> options;
};

/**
 * An initiation interval (Section VII "other extensions"): phase
 * `to` may start no earlier than `lagS` seconds after the *start*
 * of phase `from` - a start-to-start constraint, unlike the
 * finish-to-start deps.
 */
struct StartLag
{
    int from = -1;
    int to = -1;
    double lagS = 0.0;
};

/** An application: phases plus their dependency structure. */
struct AppSpec
{
    std::string name;
    std::vector<PhaseSpec> phases;
    /**
     * Dependency edges (from, to) between phase indices (Eq. 9).
     * Empty means the default chain 0 -> 1 -> ... (Eq. 2) unless
     * independentPhases is set.
     */
    std::vector<std::pair<int, int>> deps;
    /** Initiation intervals between phases (start-to-start lags). */
    std::vector<StartLag> startLags;
    /**
     * When true the phases have no mutual ordering at all (deps and
     * lags are both ignored); used by the Gables baseline which
     * discards dependencies.
     */
    bool independentPhases = false;

    /** The effective dependency edges (materializes the chain). */
    std::vector<std::pair<int, int>> effectiveDeps() const;

    /** The effective start lags (empty when independentPhases). */
    std::vector<StartLag> effectiveStartLags() const;
};

/**
 * The full scheduling problem: workload, devices, and budgets.
 */
struct ProblemSpec
{
    std::string name;
    std::vector<AppSpec> apps;
    /** Names of the disjunctive devices (GPU, DSAs), by device id. */
    std::vector<std::string> deviceNames;
    /** u_max: capacity of the CPU core pool. */
    double cpuCores = 1.0;
    /** p_max; kUnlimited disables the power constraint. */
    double powerBudgetW = kUnlimited;
    /** b_max; kUnlimited disables the bandwidth constraint. */
    double bandwidthGBs = kUnlimited;
    /** Extra cumulative resources (cache-level bandwidths, ...). */
    std::vector<ExtraResource> extraResources;

    /** Total number of phases across all apps. */
    int numPhases() const;

    /**
     * Structural sanity check; empty string when valid, otherwise a
     * description of the first problem (no options, bad device ids,
     * bad dependency indices, options that exceed a budget outright
     * leaving a phase unschedulable, ...).
     */
    std::string validate() const;

    /**
     * Canonical content hash of the lowered problem: every phase's
     * unit options (the T/B/P/E/U matrix entries), the *effective*
     * dependency structure (so an explicit chain and the implicit
     * default hash equally), the budgets, and the extra resources.
     * The spec's own name is excluded; two specs with equal
     * fingerprints describe the same scheduling instance and may
     * share a cached solve (see SolveMemo in hilp/engine.hh).
     */
    uint64_t fingerprint() const;
};

} // namespace hilp

#endif // HILP_HILP_PROBLEM_HH
