/** @file Tests for DSE result export and the offload analysis. */

#include <gtest/gtest.h>

#include "dse/report.hh"
#include "hilp/builder.hh"
#include "hilp/engine.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace dse {
namespace {

std::vector<DsePoint>
smallSweep()
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    std::vector<arch::SocConfig> configs;
    arch::SocConfig a;
    a.cpuCores = 1;
    configs.push_back(a);
    arch::SocConfig b;
    b.cpuCores = 2;
    b.gpuSms = 16;
    configs.push_back(b);
    DseOptions options;
    return exploreSpace(configs, wl, arch::Constraints{},
                        ModelKind::MultiAmdahl, options);
}

TEST(Report, CsvHasHeaderAndOneRowPerPoint)
{
    auto points = smallSweep();
    std::string csv = pointsToCsv(points);
    // Header + 2 rows + trailing newline split artifact.
    int lines = 0;
    for (char c : csv)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 3);
    EXPECT_NE(csv.find("config,cpus,gpu_sms"), std::string::npos);
    EXPECT_NE(csv.find("(c1,g0,d0^0)"), std::string::npos);
    EXPECT_NE(csv.find("(c2,g16,d0^0)"), std::string::npos);
}

TEST(Report, JsonHasOneEntryPerPoint)
{
    auto points = smallSweep();
    Json json = pointsToJson(points);
    EXPECT_TRUE(json.isArray());
    EXPECT_EQ(json.size(), points.size());
    std::string text = json.dump();
    EXPECT_NE(text.find("\"speedup\""), std::string::npos);
    EXPECT_NE(text.find("\"mix\""), std::string::npos);
}

TEST(Report, OffloadAnalysisOnMixedSoc)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto priority = workload::dsaPriorityOrder();
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 16;
    soc.dsas = {{16, priority[0]}, {16, priority[1]}};
    EngineOptions engine = EngineOptions::explorationMode();
    engine.solver.maxSeconds = 2.0;
    EvalResult result =
        evaluate(buildProblem(wl, soc, arch::Constraints{}), engine);
    ASSERT_TRUE(result.ok);
    OffloadAnalysis analysis = analyzeOffload(result.schedule);
    // The DSAs hold LUD and HS - the two longest kernels - so they
    // absorb a large share of the accelerated compute time.
    EXPECT_GT(analysis.dsaBusyS, 0.0);
    EXPECT_GT(analysis.gpuBusyS, 0.0);
    EXPECT_GT(analysis.dsaShare, 0.3);
    EXPECT_LT(analysis.dsaShare, 1.0);
}

TEST(Report, OffloadAnalysisOnGpuOnlySoc)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 64;
    EngineOptions engine = EngineOptions::explorationMode();
    engine.solver.maxSeconds = 2.0;
    EvalResult result =
        evaluate(buildProblem(wl, soc, arch::Constraints{}), engine);
    ASSERT_TRUE(result.ok);
    OffloadAnalysis analysis = analyzeOffload(result.schedule);
    EXPECT_DOUBLE_EQ(analysis.dsaBusyS, 0.0);
    EXPECT_DOUBLE_EQ(analysis.dsaShare, 0.0);
    EXPECT_GT(analysis.gpuBusyS, 0.0);
}

TEST(Report, EmptyScheduleAnalysisIsZero)
{
    Schedule schedule;
    OffloadAnalysis analysis = analyzeOffload(schedule);
    EXPECT_DOUBLE_EQ(analysis.gpuBusyS, 0.0);
    EXPECT_DOUBLE_EQ(analysis.dsaBusyS, 0.0);
    EXPECT_DOUBLE_EQ(analysis.dsaShare, 0.0);
}

} // anonymous namespace
} // namespace dse
} // namespace hilp
