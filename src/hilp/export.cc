#include "export.hh"

#include "cp/solver.hh"
#include "problem.hh"

namespace hilp {

Json
scheduleToJson(const Schedule &schedule)
{
    Json json = Json::object();
    json.set("step_s", Json::number(schedule.stepS));
    json.set("makespan_s", Json::number(schedule.makespanS()));
    json.set("average_wlp", Json::number(schedule.averageWlp()));
    json.set("peak_wlp",
             Json::number(static_cast<int64_t>(schedule.peakWlp())));

    Json devices = Json::array();
    for (const std::string &device : schedule.deviceNames)
        devices.append(Json::string(device));
    json.set("devices", std::move(devices));
    json.set("cpu_cores", Json::number(schedule.cpuCores));

    Json phases = Json::array();
    for (const ScheduledPhase &phase : schedule.phases) {
        Json entry = Json::object();
        entry.set("name", Json::string(phase.name));
        entry.set("app", Json::number(
            static_cast<int64_t>(phase.app)));
        entry.set("phase", Json::number(
            static_cast<int64_t>(phase.phase)));
        entry.set("unit", Json::string(phase.unitLabel));
        entry.set("device", phase.device == kCpuPool
            ? Json::string("cpu-pool")
            : Json::number(static_cast<int64_t>(phase.device)));
        entry.set("start_s", Json::number(phase.startS));
        entry.set("duration_s", Json::number(phase.durationS));
        entry.set("power_w", Json::number(phase.powerW));
        entry.set("bandwidth_gbs", Json::number(phase.bwGBs));
        entry.set("cpu_cores", Json::number(phase.cpuCores));
        phases.append(std::move(entry));
    }
    json.set("phases", std::move(phases));

    Json utilization = Json::array();
    for (const Schedule::Utilization &row : schedule.utilization()) {
        Json entry = Json::object();
        entry.set("unit", Json::string(row.unit));
        entry.set("busy_s", Json::number(row.busyS));
        entry.set("share", Json::number(row.share));
        utilization.append(std::move(entry));
    }
    json.set("utilization", std::move(utilization));
    return json;
}

Json
evalResultToJson(const EvalResult &result)
{
    Json json = Json::object();
    json.set("ok", Json::boolean(result.ok));
    json.set("status", Json::string(cp::toString(result.status)));
    json.set("makespan_s", Json::number(result.makespanS));
    json.set("lower_bound_s", Json::number(result.lowerBoundS));
    json.set("gap", Json::number(result.gap));
    json.set("near_optimal", Json::boolean(result.nearOptimal()));
    json.set("step_s", Json::number(result.stepS));
    json.set("refinements", Json::number(
        static_cast<int64_t>(result.refinements)));
    json.set("average_wlp", Json::number(result.averageWlp));

    Json stats = Json::object();
    stats.set("nodes", Json::number(result.stats.nodes));
    stats.set("backtracks", Json::number(result.stats.backtracks));
    stats.set("solutions", Json::number(result.stats.solutions));
    stats.set("greedy_makespan_steps", Json::number(
        static_cast<int64_t>(result.stats.greedyMakespan)));
    stats.set("exhausted", Json::boolean(result.stats.exhausted));
    stats.set("seconds", Json::number(result.stats.seconds));
    Json bounds = Json::object();
    bounds.set("critical_path", Json::number(static_cast<int64_t>(
        result.stats.bounds.criticalPath)));
    bounds.set("group_load", Json::number(static_cast<int64_t>(
        result.stats.bounds.groupLoad)));
    bounds.set("resource_energy", Json::number(static_cast<int64_t>(
        result.stats.bounds.resourceEnergy)));
    bounds.set("lp_relaxation", Json::number(static_cast<int64_t>(
        result.stats.bounds.lpRelaxation)));
    stats.set("lower_bounds_steps", std::move(bounds));
    json.set("solver", std::move(stats));

    json.set("schedule", scheduleToJson(result.schedule));
    return json;
}

} // namespace hilp
