/**
 * @file
 * Table II: the Rodinia benchmark profiles and their GPU power-law
 * fits. The embedded table is printed verbatim, and the paper's
 * fitting methodology is exercised end-to-end: profile-shaped
 * samples are regenerated at the MIG SM counts (14/28/42/56/98) and
 * refit with least squares on log-log data, recovering (a, b, r2).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hh"
#include "support/powerlaw.hh"
#include "support/table.hh"
#include "workload/rodinia.hh"

namespace {

using namespace hilp;

/** The MIG-supported SM counts the paper profiled (Section IV). */
const std::vector<double> kMigSms = {14, 28, 42, 56, 98};

void
emitTable()
{
    bench::banner(
        "Table II - benchmark profiles and GPU power-law fits",
        "Embedded Table II data plus a regeneration of the fits: we\n"
        "sample each published law at the MIG SM counts (with mild\n"
        "measurement noise) and refit y = a * x^b by least squares.");

    Table table({"benchmark", "setup", "C-CPU", "C-GPU", "TD",
                 "GPU BW", "fit a", "fit b", "r2", "refit a",
                 "refit b", "refit r2"});
    table.setAlign(0, Table::Align::Left);
    uint64_t seed = 1;
    for (const auto &bench : workload::rodiniaBenchmarks()) {
        // Regenerate profile-shaped samples and refit, as the paper
        // does from its measurements.
        std::vector<double> ys =
            samplePowerLaw(bench.timeLaw, kMigSms, 0.02, seed++);
        PowerLaw refit = fitPowerLaw(kMigSms, ys);
        table.addRow(RowBuilder()
                         .cell(std::string(bench.abbrev))
                         .cell(bench.setupS, 4)
                         .cell(bench.computeCpuS, 1)
                         .cell(bench.computeGpuS, 4)
                         .cell(bench.teardownS, 1)
                         .cell(bench.gpuBwGBs, 1)
                         .cell(bench.timeLaw.a, 2)
                         .cell(bench.timeLaw.b, 2)
                         .cell(bench.timeLaw.r2, 2)
                         .cell(refit.a, 2)
                         .cell(refit.b, 2)
                         .cell(refit.r2, 2)
                         .take());
    }
    table.print();

    bench::section("scaled benchmark configurations (Table II)");
    Table configs({"benchmark", "configuration"});
    configs.setAlign(0, Table::Align::Left);
    configs.setAlign(1, Table::Align::Left);
    for (const auto &bench : workload::rodiniaBenchmarks())
        configs.addRow({bench.abbrev, bench.scaledConfig});
    configs.print();

    bench::section("bandwidth power laws (refit check)");
    Table bw({"benchmark", "fit a", "fit b", "r2", "refit b"});
    bw.setAlign(0, Table::Align::Left);
    seed = 100;
    for (const auto &bench : workload::rodiniaBenchmarks()) {
        std::vector<double> ys =
            samplePowerLaw(bench.bwLaw, kMigSms, 0.02, seed++);
        PowerLaw refit = fitPowerLaw(kMigSms, ys);
        bw.addRow(RowBuilder()
                      .cell(std::string(bench.abbrev))
                      .cell(bench.bwLaw.a, 2)
                      .cell(bench.bwLaw.b, 2)
                      .cell(bench.bwLaw.r2, 2)
                      .cell(refit.b, 2)
                      .take());
    }
    bw.print();
}

void
BM_FitPowerLaw(benchmark::State &state)
{
    const auto &hs = workload::rodiniaBenchmarks()[3];
    std::vector<double> ys = samplePowerLaw(hs.timeLaw, kMigSms);
    for (auto _ : state) {
        PowerLaw fit = fitPowerLaw(kMigSms, ys);
        benchmark::DoNotOptimize(fit.b);
    }
}
BENCHMARK(BM_FitPowerLaw);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
