/** @file Unit tests for the JSON writer and reader. */

#include <gtest/gtest.h>

#include <string>

#include "support/json.hh"

namespace hilp {
namespace {

TEST(JsonTest, Scalars)
{
    EXPECT_EQ(Json::null().dump(), "null");
    EXPECT_EQ(Json::boolean(true).dump(), "true");
    EXPECT_EQ(Json::boolean(false).dump(), "false");
    EXPECT_EQ(Json::number(static_cast<int64_t>(42)).dump(), "42");
    EXPECT_EQ(Json::number(-7.5).dump(), "-7.5");
    EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(JsonTest, NonFiniteNumbersBecomeNull)
{
    EXPECT_EQ(Json::number(
        std::numeric_limits<double>::infinity()).dump(), "null");
    EXPECT_EQ(Json::number(
        std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(JsonTest, EmptyContainers)
{
    EXPECT_EQ(Json::object().dump(), "{}");
    EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(JsonTest, ObjectCompact)
{
    Json json = Json::object();
    json.set("a", Json::number(static_cast<int64_t>(1)));
    json.set("b", Json::string("x"));
    EXPECT_EQ(json.dump(), "{\"a\":1,\"b\":\"x\"}");
}

TEST(JsonTest, SetOverwritesExistingKey)
{
    Json json = Json::object();
    json.set("a", Json::number(static_cast<int64_t>(1)));
    json.set("a", Json::number(static_cast<int64_t>(2)));
    EXPECT_EQ(json.size(), 1u);
    EXPECT_EQ(json.dump(), "{\"a\":2}");
}

TEST(JsonTest, ArrayAppend)
{
    Json json = Json::array();
    json.append(Json::number(static_cast<int64_t>(1)));
    json.append(Json::boolean(false));
    EXPECT_EQ(json.dump(), "[1,false]");
    EXPECT_EQ(json.size(), 2u);
}

TEST(JsonTest, Nesting)
{
    Json inner = Json::array();
    inner.append(Json::number(static_cast<int64_t>(1)));
    Json json = Json::object();
    json.set("xs", std::move(inner));
    EXPECT_EQ(json.dump(), "{\"xs\":[1]}");
}

TEST(JsonTest, PrettyPrinting)
{
    Json json = Json::object();
    json.set("a", Json::number(static_cast<int64_t>(1)));
    EXPECT_EQ(json.dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonTest, StringEscaping)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, EscapedStringsInDump)
{
    EXPECT_EQ(Json::string("a\"b").dump(), "\"a\\\"b\"");
}

TEST(JsonTest, RoundNumbersStayPrecise)
{
    EXPECT_EQ(Json::number(0.1).dump(),
              "0.10000000000000001"); // %.17g round-trip precision.
    EXPECT_EQ(Json::number(2.0).dump(), "2");
}

TEST(JsonParseTest, Scalars)
{
    Json value;
    ASSERT_TRUE(Json::parse("null", &value));
    EXPECT_TRUE(value.isNull());
    ASSERT_TRUE(Json::parse("true", &value));
    EXPECT_TRUE(value.isBool());
    EXPECT_TRUE(value.boolValue());
    ASSERT_TRUE(Json::parse("false", &value));
    EXPECT_FALSE(value.boolValue());
    ASSERT_TRUE(Json::parse("42", &value));
    EXPECT_TRUE(value.isNumber());
    EXPECT_EQ(value.intValue(), 42);
    ASSERT_TRUE(Json::parse("-7.5", &value));
    EXPECT_DOUBLE_EQ(value.numberValue(), -7.5);
    ASSERT_TRUE(Json::parse("1e3", &value));
    EXPECT_DOUBLE_EQ(value.numberValue(), 1000.0);
    ASSERT_TRUE(Json::parse("\"hi\"", &value));
    EXPECT_TRUE(value.isString());
    EXPECT_EQ(value.stringValue(), "hi");
}

TEST(JsonParseTest, Containers)
{
    Json value;
    ASSERT_TRUE(Json::parse("  [1, \"two\", [true]] ", &value));
    ASSERT_TRUE(value.isArray());
    ASSERT_EQ(value.size(), 3u);
    EXPECT_EQ(value.at(0).intValue(), 1);
    EXPECT_EQ(value.at(1).stringValue(), "two");
    EXPECT_TRUE(value.at(2).at(0).boolValue());

    ASSERT_TRUE(Json::parse("{\"a\": 1, \"b\": {\"c\": []}}", &value));
    ASSERT_TRUE(value.isObject());
    ASSERT_NE(value.find("a"), nullptr);
    EXPECT_EQ(value.find("a")->intValue(), 1);
    ASSERT_NE(value.find("b"), nullptr);
    ASSERT_NE(value.find("b")->find("c"), nullptr);
    EXPECT_TRUE(value.find("b")->find("c")->isArray());
    EXPECT_EQ(value.find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes)
{
    Json value;
    ASSERT_TRUE(Json::parse(
        "\"a\\\"b\\\\c\\n\\t\\u0041\"", &value));
    EXPECT_EQ(value.stringValue(), "a\"b\\c\n\tA");
    // Surrogate pair: U+1F600 encodes to 4 UTF-8 bytes.
    ASSERT_TRUE(Json::parse("\"\\uD83D\\uDE00\"", &value));
    EXPECT_EQ(value.stringValue().size(), 4u);
}

TEST(JsonParseTest, RejectsMalformedInput)
{
    Json value;
    std::string error;
    EXPECT_FALSE(Json::parse("", &value, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(Json::parse("{", &value));
    EXPECT_FALSE(Json::parse("[1,]", &value));
    EXPECT_FALSE(Json::parse("{\"a\" 1}", &value));
    EXPECT_FALSE(Json::parse("\"unterminated", &value));
    EXPECT_FALSE(Json::parse("nul", &value));
    EXPECT_FALSE(Json::parse("1 2", &value)); // Trailing token.
    EXPECT_TRUE(value.isNull()); // Left null on failure.
}

TEST(JsonParseTest, RoundTripsWriterOutput)
{
    Json original = Json::object();
    original.set("n", Json::number(static_cast<int64_t>(-3)));
    original.set("x", Json::number(0.25));
    original.set("s", Json::string("quote\" and \\slash\n"));
    Json list = Json::array();
    list.append(Json::boolean(true));
    list.append(Json::null());
    original.set("list", std::move(list));

    for (int indent : {-1, 2}) {
        Json reparsed;
        std::string error;
        ASSERT_TRUE(Json::parse(original.dump(indent), &reparsed,
                                &error)) << error;
        EXPECT_EQ(reparsed.dump(), original.dump());
    }
}

TEST(JsonParseTest, DepthLimitStopsRunawayNesting)
{
    std::string deep(500, '[');
    deep += std::string(500, ']');
    Json value;
    std::string error;
    EXPECT_FALSE(Json::parse(deep, &value, &error));
    EXPECT_NE(error.find("deep"), std::string::npos);
}

} // anonymous namespace
} // namespace hilp
