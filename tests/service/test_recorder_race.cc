/**
 * @file
 * Flight-recorder contention test: 8 writer threads hammer a small
 * lock-sharded ring while a reader snapshots it. Lives in the
 * concurrency test binary so the TSan stage of scripts/check.sh
 * covers the shard locking (record vs recent/size/statsJson).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "service/flight_recorder.hh"

namespace hilp {
namespace {

using service::FlightRecorder;
using service::RequestSummary;

TEST(FlightRecorderRaceTest, ConcurrentRecordAndSnapshot)
{
    constexpr int kWriters = 8;
    constexpr int kRecordsPerWriter = 2000;

    FlightRecorder recorder(64, 8);
    std::atomic<uint64_t> nextId{1};
    std::atomic<bool> stop{false};

    std::thread reader([&] {
        // Snapshot continuously while writers run: every summary
        // seen must be internally consistent (a torn copy would show
        // a mismatched id/total pair, and TSan would flag the race).
        while (!stop.load(std::memory_order_acquire)) {
            std::vector<RequestSummary> recent = recorder.recent();
            EXPECT_LE(recent.size(), recorder.capacity());
            for (const RequestSummary &summary : recent) {
                EXPECT_EQ(summary.totalUs,
                          static_cast<int64_t>(summary.traceId) * 3);
                EXPECT_EQ(summary.op, "eval");
            }
            recorder.statsJson();
        }
    });

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&] {
            for (int i = 0; i < kRecordsPerWriter; ++i) {
                RequestSummary summary;
                summary.traceId =
                    nextId.fetch_add(1, std::memory_order_relaxed);
                summary.op = "eval";
                summary.ok = true;
                summary.slow = (summary.traceId % 7) == 0;
                summary.totalUs =
                    static_cast<int64_t>(summary.traceId) * 3;
                recorder.record(summary);
            }
        });
    for (std::thread &writer : writers)
        writer.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(recorder.recorded(),
              static_cast<int64_t>(kWriters) * kRecordsPerWriter);
    EXPECT_EQ(recorder.size(), recorder.capacity());
    // After the dust settles the retained tail is well-ordered.
    std::vector<RequestSummary> recent = recorder.recent();
    for (size_t i = 1; i < recent.size(); ++i)
        EXPECT_LT(recent[i - 1].traceId, recent[i].traceId);
}

} // anonymous namespace
} // namespace hilp
