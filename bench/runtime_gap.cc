/**
 * @file
 * Ablation: the offline/online scheduling gap (the Section I
 * argument). HILP's near-optimal schedules decouple hardware
 * evaluation from scheduler maturity: this harness measures how far
 * naive runtime dispatchers (FIFO / longest-first / shortest-first
 * greedy, simulated event by event) fall short of HILP's certified
 * schedules on the paper's SoCs, and independently replays every
 * HILP schedule through the simulator as a cross-validation.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hh"
#include "hilp/builder.hh"
#include "sim/replay.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

struct Scenario
{
    const char *label;
    arch::SocConfig soc;
    arch::Constraints constraints;
};

std::vector<Scenario>
scenarios()
{
    auto priority = workload::dsaPriorityOrder();
    std::vector<Scenario> list;
    {
        Scenario s;
        s.label = "(c4,g16,d2^16) @ 600 W";
        s.soc.cpuCores = 4;
        s.soc.gpuSms = 16;
        s.soc.dsas = {{16, priority[0]}, {16, priority[1]}};
        list.push_back(s);
    }
    {
        Scenario s;
        s.label = "(c4,g64,d0^0) @ 600 W";
        s.soc.cpuCores = 4;
        s.soc.gpuSms = 64;
        list.push_back(s);
    }
    {
        Scenario s;
        s.label = "(c4,g64,d0^0) @ 50 W";
        s.soc.cpuCores = 4;
        s.soc.gpuSms = 64;
        s.constraints.powerBudgetW = 50.0;
        list.push_back(s);
    }
    return list;
}

void
emitGap()
{
    bench::banner(
        "Offline/online scheduling gap (Section I rationale)",
        "HILP's near-optimal schedule vs simulated naive runtime\n"
        "dispatchers on the Default workload. HILP's schedules are\n"
        "independently re-validated by event-driven replay.");

    auto wl = workload::makeWorkload(workload::Variant::Default);

    Table table({"scenario", "HILP (s)", "LB (s)", "replay",
                 "fifo (s)", "longest (s)", "shortest (s)",
                 "worst gap"});
    table.setAlign(0, Table::Align::Left);
    table.setAlign(3, Table::Align::Left);

    for (const Scenario &scenario : scenarios()) {
        ProblemSpec spec =
            buildProblem(wl, scenario.soc, scenario.constraints);
        EngineOptions engine = EngineOptions::validationMode();
        engine.solver.maxSeconds = 6.0;
        engine.escalations = 1;
        EvalResult offline = evaluate(spec, engine);
        if (!offline.ok)
            continue;
        sim::SimResult replay =
            sim::replaySchedule(spec, offline.schedule);

        double online_makespans[3];
        int idx = 0;
        for (sim::DispatchOrder order :
             {sim::DispatchOrder::Fifo,
              sim::DispatchOrder::LongestFirst,
              sim::DispatchOrder::ShortestFirst}) {
            sim::OnlineOptions online;
            online.order = order;
            sim::SimResult result =
                sim::runOnlineScheduler(spec, online);
            online_makespans[idx++] =
                result.ok ? result.makespanS : -1.0;
        }
        double worst = 0.0;
        for (double makespan : online_makespans)
            if (makespan > 0.0)
                worst = std::max(worst,
                                 makespan / offline.makespanS);
        table.addRow(RowBuilder()
                         .cell(std::string(scenario.label))
                         .cell(offline.makespanS, 1)
                         .cell(offline.lowerBoundS, 1)
                         .cell(std::string(replay.ok ? "VALID"
                                                     : "INVALID"))
                         .cell(online_makespans[0], 1)
                         .cell(online_makespans[1], 1)
                         .cell(online_makespans[2], 1)
                         .cell(worst, 2)
                         .take());
    }
    table.print();
    std::printf("\n'worst gap' = worst online makespan / HILP "
                "makespan. Values above 1\nquantify how much naive "
                "runtime scheduling leaves on the table,\nwhich is "
                "why SoC comparisons must use near-optimal "
                "schedules.\n");
}

void
BM_OnlineScheduler(benchmark::State &state)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 16;
    ProblemSpec spec = buildProblem(wl, soc, arch::Constraints{});
    for (auto _ : state) {
        sim::SimResult result = sim::runOnlineScheduler(spec);
        benchmark::DoNotOptimize(result.makespanS);
    }
}
BENCHMARK(BM_OnlineScheduler)->Unit(benchmark::kMillisecond);

void
BM_ReplayValidation(benchmark::State &state)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 16;
    ProblemSpec spec = buildProblem(wl, soc, arch::Constraints{});
    EngineOptions engine = EngineOptions::explorationMode();
    engine.solver.maxSeconds = 1.0;
    EvalResult offline = evaluate(spec, engine);
    for (auto _ : state) {
        sim::SimResult result =
            sim::replaySchedule(spec, offline.schedule);
        benchmark::DoNotOptimize(result.ok);
    }
}
BENCHMARK(BM_ReplayValidation)->Unit(benchmark::kMillisecond);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitGap();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
