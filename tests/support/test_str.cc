/** @file Unit tests for string helpers. */

#include <gtest/gtest.h>

#include "support/str.hh"

namespace hilp {
namespace {

TEST(Str, FormatBasic)
{
    EXPECT_EQ(format("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(format("%.2f", 3.14159), "3.14");
    EXPECT_EQ(format("plain"), "plain");
}

TEST(Str, FormatLongString)
{
    std::string long_arg(500, 'a');
    std::string out = format("<%s>", long_arg.c_str());
    EXPECT_EQ(out.size(), 502u);
}

TEST(Str, SplitBasic)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Str, SplitKeepsEmptyFields)
{
    auto parts = split(",a,,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Str, SplitNoDelimiter)
{
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Str, TrimBasic)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("\t\nhi\r "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Str, JoinBasic)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({"solo"}, ","), "solo");
    EXPECT_EQ(join({}, ","), "");
}

TEST(Str, StartsWith)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_TRUE(startsWith("hello", ""));
    EXPECT_TRUE(startsWith("hello", "hello"));
    EXPECT_FALSE(startsWith("hello", "hello!"));
    EXPECT_FALSE(startsWith("hello", "el"));
}

TEST(Str, ToLower)
{
    EXPECT_EQ(toLower("HeLLo 123"), "hello 123");
    EXPECT_EQ(toLower(""), "");
}

TEST(Str, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(3.14159, 0), "3");
    EXPECT_EQ(fmtDouble(-1.5, 1), "-1.5");
    EXPECT_EQ(fmtDouble(2.0, 3), "2.000");
}

} // anonymous namespace
} // namespace hilp
