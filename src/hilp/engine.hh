/**
 * @file
 * The HILP evaluation engine: adaptive time-step selection around
 * the CP solver (Section III-D).
 *
 * The engine solves the discretized problem at an initial time-step
 * size; while the resulting makespan uses fewer steps than the
 * refinement threshold it increases resolution by the refinement
 * factor and re-solves, keeping the horizon constant. If no schedule
 * fits at the initial resolution the engine coarsens instead. The
 * final result reports the makespan, the certified optimality bound
 * and gap, the schedule, and the average WLP.
 */

#ifndef HILP_HILP_ENGINE_HH
#define HILP_HILP_ENGINE_HH

#include "cp/solver.hh"
#include "discretize.hh"
#include "problem.hh"
#include "schedule.hh"

namespace hilp {

/** Engine configuration. */
struct EngineOptions
{
    double initialStepS = 10.0; //!< Starting time-step size.
    cp::Time horizonSteps = 200; //!< Fixed horizon, in steps.
    /** Refine resolution while the makespan is below this. */
    cp::Time refineThreshold = 40;
    double refineFactor = 5.0;  //!< Resolution multiplier per round.
    int maxRefinements = 6;
    int maxCoarsenings = 6;     //!< When nothing fits initially.
    cp::SolverOptions solver;   //!< Underlying solver budget/gap.
    /**
     * Re-solve attempts with multiplied budgets when the gap misses
     * the solver's target (Section III-D: "we rerun the experiments
     * that do not achieve this bound with more resources").
     */
    int escalations = 0;
    /** Budget multiplier applied per escalation. */
    double escalationFactor = 4.0;

    /**
     * The paper's validation-mode parameters (Section III-D): 2 s
     * steps, 1000-step horizon, refine below 200 steps.
     */
    static EngineOptions validationMode();

    /**
     * The paper's exploration-mode parameters: 10 s steps, 200-step
     * horizon, refine below 40 steps.
     */
    static EngineOptions explorationMode();
};

/** The outcome of evaluating a workload on an SoC. */
struct EvalResult
{
    bool ok = false;             //!< A schedule was produced.
    cp::SolveStatus status = cp::SolveStatus::NoSolution;
    double stepS = 0.0;          //!< Final time-step size.
    double makespanS = 0.0;      //!< Schedule length, seconds.
    double lowerBoundS = 0.0;    //!< Certified bound, seconds.
    double gap = 0.0;            //!< (UB - LB) / UB at the final step.
    Schedule schedule;           //!< The full schedule.
    double averageWlp = 0.0;     //!< Section II WLP metric.
    int refinements = 0;         //!< Resolution changes performed.
    cp::SolveStats stats;        //!< Stats of the final solve.

    /** True when the gap meets the paper's 10% near-optimal bar. */
    bool nearOptimal() const { return ok && gap <= 0.10 + 1e-12; }
};

/**
 * Evaluate the problem with the adaptive engine. The spec must
 * validate; a spec that cannot be scheduled at any attempted
 * resolution yields ok == false.
 */
EvalResult evaluate(const ProblemSpec &spec,
                    const EngineOptions &options);

/**
 * Lift a solver schedule back to spec terms. Exposed for tests and
 * for callers that drive the solver directly.
 */
Schedule liftSchedule(const ProblemSpec &spec,
                      const DiscretizedProblem &problem,
                      const cp::ScheduleVec &solution);

} // namespace hilp

#endif // HILP_HILP_ENGINE_HH
