/**
 * @file
 * The design-space explorer: evaluate a workload on every SoC in a
 * configuration list under MA, HILP, or Gables semantics, in
 * parallel, and report speedup/area/WLP per design point (the data
 * behind Figures 7 and 8).
 *
 * HILP sweeps reuse solver work across configurations (see
 * DESIGN.md section 7): configs are ordered into similarity chains
 * (same CPU cores and DSA allocation, ascending GPU size) so each
 * solve warm-starts from its neighbor's schedule, identical lowered
 * instances are served from a fingerprint-keyed cache, and a shared
 * best-point bound lets provably dominated configs skip resolution
 * refinement. Reuse changes effort, never certified results; set
 * DseOptions::reuse = false for the cold-start behavior.
 */

#ifndef HILP_DSE_EXPLORE_HH
#define HILP_DSE_EXPLORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/soc.hh"
#include "hilp/builder.hh"
#include "hilp/engine.hh"
#include "pareto.hh"
#include "workload/workload.hh"

namespace hilp {
namespace dse {

/** Which performance model evaluates the design points. */
enum class ModelKind { MultiAmdahl, Hilp, Gables };

/** Human-readable model name. */
const char *toString(ModelKind kind);

/** One evaluated design point. */
struct DsePoint
{
    arch::SocConfig config;
    double areaMm2 = 0.0;
    bool ok = false;        //!< The workload could be scheduled.
    double makespanS = 0.0;
    double speedup = 0.0;   //!< Vs. 1-CPU fully sequential execution.
    double gap = 0.0;       //!< Optimality gap (0 for MA).
    double averageWlp = 0.0;
    AccelMix mix = AccelMix::None;

    /**
     * Why the point failed when ok is false: the spec's
     * infeasibility reason ("unschedulable under budget") or the
     * solver's terminal status ("solver gave up"). Empty on success.
     */
    std::string note;
    /** Final solver status (Optimal for the analytic MA model). */
    cp::SolveStatus status = cp::SolveStatus::NoSolution;

    // Solver-effort telemetry (zero for MA and for cache hits).
    int64_t nodes = 0;        //!< B&B nodes across all solves.
    int64_t backtracks = 0;   //!< B&B backtracks across all solves.
    int solves = 0;           //!< CP solves (resolutions x attempts).
    double solveSeconds = 0.0; //!< Solver wall-clock spent.
    bool cacheHit = false;    //!< Served from the sweep's solve cache.
    bool warmStarted = false; //!< Neighbor schedule seeded the solve.
    bool pruned = false;      //!< Refinement skipped: point dominated.
    /**
     * Per-propagator telemetry merged across the point's solves
     * (empty for MA/Gables and for cache hits).
     */
    std::vector<cp::PropagatorStats> propagators;
};

/** Exploration configuration. */
struct DseOptions
{
    EngineOptions engine = EngineOptions::explorationMode();
    BuildOptions build;
    /** Worker threads; 0 = hardware concurrency. */
    int threads = 0;
    /**
     * Enable cross-config solver reuse for HILP sweeps (warm-start
     * chains, the solve cache, dominance pruning). Off reproduces
     * the cold-start behavior exactly.
     */
    bool reuse = true;
    /**
     * Optional solve cache shared across sweeps. The caller must
     * keep the engine options identical for every sweep using the
     * same memo. Null means one private cache per exploreSpace call.
     */
    SolveMemo *memo = nullptr;
};

/**
 * Evaluate the workload on every configuration under the given
 * model. Points are returned in configuration order; unschedulable
 * configurations come back with ok == false and a diagnostic note.
 */
std::vector<DsePoint> exploreSpace(
    const std::vector<arch::SocConfig> &configs,
    const workload::Workload &workload,
    const arch::Constraints &constraints, ModelKind kind,
    const DseOptions &options);

/** Evaluate one configuration (the exploreSpace worker body). */
DsePoint evaluatePoint(const arch::SocConfig &config,
                       const workload::Workload &workload,
                       const arch::Constraints &constraints,
                       ModelKind kind, const DseOptions &options);

} // namespace dse
} // namespace hilp

#endif // HILP_DSE_EXPLORE_HH
