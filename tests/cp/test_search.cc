/** @file Unit tests for the branch-and-bound search. */

#include <gtest/gtest.h>

#include "cp/list_scheduler.hh"
#include "cp/model.hh"
#include "cp/search.hh"
#include "support/random.hh"
#include "support/str.hh"

namespace hilp {
namespace cp {
namespace {

Model
twoDeviceModel()
{
    // Four tasks, each 2 steps on either of two devices: optimum 4.
    Model m;
    int g1 = m.addGroup("A");
    int g2 = m.addGroup("B");
    for (int i = 0; i < 4; ++i) {
        Task t;
        t.modes.push_back({g1, 2, {}});
        t.modes.push_back({g2, 2, {}});
        m.addTask(t);
    }
    m.setHorizon(20);
    return m;
}

TEST(Search, FindsOptimumWithoutWarmStart)
{
    Model m = twoDeviceModel();
    SearchLimits limits;
    SearchResult r = branchAndBound(m, nullptr, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.bestMakespan, 4);
    EXPECT_EQ(checkSchedule(m, r.best), "");
}

TEST(Search, WarmStartOnlyImproves)
{
    Model m = twoDeviceModel();
    // A deliberately bad but feasible warm start: everything on A.
    ScheduleVec warm;
    warm.tasks = {{0, 0}, {0, 2}, {0, 4}, {0, 6}};
    ASSERT_EQ(checkSchedule(m, warm), "");
    SearchLimits limits;
    SearchResult r = branchAndBound(m, &warm, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_EQ(r.bestMakespan, 4);
    EXPECT_GE(r.solutions, 1);
}

TEST(Search, OptimalWarmStartIsKept)
{
    Model m = twoDeviceModel();
    ScheduleVec warm;
    warm.tasks = {{0, 0}, {1, 0}, {0, 2}, {1, 2}};
    ASSERT_EQ(checkSchedule(m, warm), "");
    SearchLimits limits;
    SearchResult r = branchAndBound(m, &warm, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.bestMakespan, 4);
    // No strictly better schedule exists, so no new incumbents.
    EXPECT_EQ(r.solutions, 0);
}

TEST(Search, NodeLimitStopsSearch)
{
    Model m = twoDeviceModel();
    SearchLimits limits;
    limits.maxNodes = 1;
    SearchResult r = branchAndBound(m, nullptr, limits);
    EXPECT_FALSE(r.exhausted);
    EXPECT_LE(r.nodes, 2);
}

TEST(Search, TargetGapStopsEarly)
{
    Model m = twoDeviceModel();
    ScheduleVec warm;
    warm.tasks = {{0, 0}, {1, 0}, {0, 2}, {1, 2}};
    SearchLimits limits;
    limits.targetGap = 0.5;
    limits.lowerBound = 3; // gap (4-3)/4 = 0.25 <= 0.5.
    SearchResult r = branchAndBound(m, &warm, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_FALSE(r.exhausted); // stopped by the gap, not exhaustion.
    EXPECT_EQ(r.nodes, 0);
}

TEST(Search, ProvesInfeasibilityByExhaustion)
{
    Model m;
    int g = m.addGroup("G");
    for (int i = 0; i < 3; ++i) {
        Task t;
        t.modes.push_back({g, 3, {}});
        m.addTask(t);
    }
    m.setHorizon(8); // needs 9 steps on one device.
    SearchLimits limits;
    SearchResult r = branchAndBound(m, nullptr, limits);
    EXPECT_FALSE(r.foundSolution);
    EXPECT_TRUE(r.exhausted);
}

TEST(Search, PrecedenceAcrossDevicesHandled)
{
    // a (dev A, 3) -> b (dev B, 2); independent c (dev B, 4).
    // Optimum: c at 0 on B, a at 0 on A, b at 4 -> makespan 6.
    // (b at 3 would collide with c; b after c is 6.)
    Model m;
    int g1 = m.addGroup("A");
    int g2 = m.addGroup("B");
    Task a;
    a.modes.push_back({g1, 3, {}});
    m.addTask(a);
    Task b;
    b.modes.push_back({g2, 2, {}});
    m.addTask(b);
    Task c;
    c.modes.push_back({g2, 4, {}});
    m.addTask(c);
    m.addPrecedence(0, 1);
    m.setHorizon(20);
    SearchLimits limits;
    SearchResult r = branchAndBound(m, nullptr, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.bestMakespan, 6);
}

TEST(Search, CumulativeResourcePacking)
{
    // Capacity 2, four unit-usage tasks of 3 steps: two at a time,
    // optimum 6.
    Model m;
    m.addResource(2.0, "r");
    for (int i = 0; i < 4; ++i) {
        Task t;
        t.modes.push_back({kNoGroup, 3, {1.0}});
        m.addTask(t);
    }
    m.setHorizon(20);
    SearchLimits limits;
    SearchResult r = branchAndBound(m, nullptr, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_EQ(r.bestMakespan, 6);
    EXPECT_EQ(checkSchedule(m, r.best), "");
}

/**
 * Random multi-mode model with groups, a cumulative resource, and a
 * sparse precedence DAG - enough structure to force nontrivial
 * branching, mode ties, and backtracking.
 */
Model
randomModel(uint64_t seed)
{
    Rng rng(seed * 2654435761u + 11);
    Model m;
    m.addResource(rng.uniformDouble(1.0, 2.5), "power");
    int g1 = m.addGroup("A");
    int g2 = m.addGroup("B");
    int n = static_cast<int>(rng.uniformInt(5, 8));
    for (int i = 0; i < n; ++i) {
        Task t;
        t.name = format("t%d", i);
        int nm = static_cast<int>(rng.uniformInt(1, 3));
        for (int k = 0; k < nm; ++k) {
            double which = rng.uniformDouble();
            int g = which < 0.4 ? g1 : which < 0.8 ? g2 : kNoGroup;
            t.modes.push_back(
                {g, static_cast<Time>(rng.uniformInt(1, 4)),
                 {rng.uniformDouble(0.0, 1.2)}});
        }
        m.addTask(t);
    }
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (rng.chance(0.2))
                m.addPrecedence(i, j);
    m.setHorizon(6 * n);
    return m;
}

class SearchLayout : public ::testing::TestWithParam<uint64_t>
{};

/**
 * The packed (arena + SoA slab) and legacy layouts are pure memory-
 * layout changes: both must explore the *bit-identical* search tree.
 * Compare every observable of the two runs on random models.
 */
TEST_P(SearchLayout, PackedAndLegacyExploreIdenticalTrees)
{
    Model m = randomModel(GetParam());
    SearchLimits packed;
    packed.packedLayout = true;
    SearchLimits legacy;
    legacy.packedLayout = false;
    SearchResult p = branchAndBound(m, nullptr, packed);
    SearchResult l = branchAndBound(m, nullptr, legacy);

    EXPECT_EQ(p.foundSolution, l.foundSolution);
    EXPECT_EQ(p.exhausted, l.exhausted);
    EXPECT_EQ(p.bestMakespan, l.bestMakespan);
    EXPECT_EQ(p.nodes, l.nodes);
    EXPECT_EQ(p.backtracks, l.backtracks);
    EXPECT_EQ(p.solutions, l.solutions);
    if (p.foundSolution) {
        ASSERT_EQ(p.best.tasks.size(), l.best.tasks.size());
        for (size_t i = 0; i < p.best.tasks.size(); ++i) {
            EXPECT_EQ(p.best.tasks[i].mode, l.best.tasks[i].mode);
            EXPECT_EQ(p.best.tasks[i].start, l.best.tasks[i].start);
        }
    }
    // The packed run rewinds its node arena as it backtracks, and
    // the scratch growth during the walk is bounded by the one-time
    // pool warm-up (steady state allocates nothing per node).
    if (p.nodes > 0) {
        EXPECT_GT(p.arenaRewinds, 0);
        EXPECT_GT(p.arenaHighWater, 0);
    }
    EXPECT_GE(p.scratchBytes, 0);
    EXPECT_GE(l.scratchBytes, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchLayout,
                         ::testing::Range<uint64_t>(1, 13));

} // anonymous namespace
} // namespace cp
} // namespace hilp
