#include "explore.hh"

namespace hilp {
namespace dse {

// The sweep implementation behind exploreSpace/evaluatePoint lives
// in service/eval_service.cc: the dse:: entry points are thin
// clients of the shared sweep core the EvalService owns. Only the
// model-name table stays here, where checkpoint.cc (same library)
// needs it.

const char *
toString(ModelKind kind)
{
    switch (kind) {
      case ModelKind::MultiAmdahl:
        return "MA";
      case ModelKind::Hilp:
        return "HILP";
      case ModelKind::Gables:
        return "Gables";
    }
    return "unknown";
}

} // namespace dse
} // namespace hilp
