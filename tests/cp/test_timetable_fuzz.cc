/**
 * @file
 * Fuzz tests for the timetable: random place/remove sequences are
 * cross-checked against a naive reference implementation that
 * recomputes occupancy from scratch.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cp/model.hh"
#include "cp/timetable.hh"
#include "support/random.hh"

namespace hilp {
namespace cp {
namespace {

/** Naive occupancy oracle: recompute everything on every query. */
class NaiveTable
{
  public:
    explicit NaiveTable(const Model &model) : model_(model) {}

    void
    place(const Mode &mode, Time start)
    {
        placed_.push_back({&mode, start});
    }

    void
    remove(const Mode &mode, Time start)
    {
        for (size_t i = 0; i < placed_.size(); ++i) {
            if (placed_[i].first == &mode &&
                placed_[i].second == start) {
                placed_.erase(placed_.begin() +
                              static_cast<ptrdiff_t>(i));
                return;
            }
        }
        FAIL() << "remove of unplaced mode";
    }

    bool
    fits(const Mode &mode, Time start) const
    {
        if (start + mode.duration > model_.horizon())
            return false;
        for (Time s = start; s < start + mode.duration; ++s) {
            if (mode.group != kNoGroup) {
                for (const auto &[placed, pstart] : placed_) {
                    if (placed->group == mode.group &&
                        s >= pstart &&
                        s < pstart + placed->duration)
                        return false;
                }
            }
            for (int r = 0; r < model_.numResources(); ++r) {
                // Same scaled integer units as the timetable, so
                // the oracle agrees exactly, not just within eps.
                Units used = toUnits(mode.usage[r]);
                for (const auto &[placed, pstart] : placed_) {
                    if (s >= pstart && s < pstart + placed->duration)
                        used += toUnits(placed->usage[r]);
                }
                if (used > toUnits(model_.capacity(r)) +
                           kCapacitySlack)
                    return false;
            }
        }
        return true;
    }

    Time
    earliestStart(const Mode &mode, Time est) const
    {
        for (Time s = est; s + mode.duration <= model_.horizon();
             ++s) {
            if (fits(mode, s))
                return s;
        }
        if (mode.duration == 0)
            return est <= model_.horizon() ? est : -1;
        return -1;
    }

  private:
    const Model &model_;
    std::vector<std::pair<const Mode *, Time>> placed_;
};

class TimetableFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(TimetableFuzz, MatchesNaiveOracle)
{
    Rng rng(GetParam() * 31337);
    Model m;
    m.addResource(rng.uniformDouble(1.0, 3.0), "r0");
    m.addResource(rng.uniformDouble(1.0, 3.0), "r1");
    int g1 = m.addGroup("A");
    int g2 = m.addGroup("B");
    m.setHorizon(24);

    // A pool of candidate modes.
    std::vector<Mode> modes;
    for (int i = 0; i < 12; ++i) {
        Mode mode;
        double which = rng.uniformDouble();
        mode.group = which < 0.33 ? g1 : which < 0.66 ? g2 : kNoGroup;
        mode.duration = static_cast<Time>(rng.uniformInt(0, 5));
        mode.usage = {rng.uniformDouble(0.0, 1.5),
                      rng.uniformDouble(0.0, 1.5)};
        modes.push_back(mode);
    }

    Timetable table(m);
    NaiveTable naive(m);
    std::vector<std::pair<const Mode *, Time>> active;

    for (int step = 0; step < 200; ++step) {
        if (active.size() < 6 && rng.chance(0.6)) {
            // Try to place a random mode at a random est.
            const Mode &mode = modes[static_cast<size_t>(
                rng.uniformInt(0, 11))];
            Time est = static_cast<Time>(rng.uniformInt(0, 20));
            Time fast = table.earliestStart(mode, est);
            Time slow = naive.earliestStart(mode, est);
            ASSERT_EQ(fast, slow)
                << "earliestStart mismatch at step " << step;
            if (fast >= 0) {
                ASSERT_TRUE(table.fits(mode, fast));
                table.place(mode, fast);
                naive.place(mode, fast);
                active.emplace_back(&mode, fast);
            }
        } else if (!active.empty()) {
            // Remove a random active placement.
            size_t pick = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(active.size()) - 1));
            auto [mode, start] = active[pick];
            table.remove(*mode, start);
            naive.remove(*mode, start);
            active.erase(active.begin() +
                         static_cast<ptrdiff_t>(pick));
        }
    }

    // Drain and verify emptiness.
    for (auto [mode, start] : active)
        table.remove(*mode, start);
    Mode probe;
    probe.group = g1;
    probe.duration = 24;
    probe.usage = {0.0, 0.0};
    EXPECT_EQ(table.earliestStart(probe, 0), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimetableFuzz,
                         ::testing::Range<uint64_t>(1, 13));

} // anonymous namespace
} // namespace cp
} // namespace hilp
