/** @file Unit tests for the JSON writer. */

#include <gtest/gtest.h>

#include "support/json.hh"

namespace hilp {
namespace {

TEST(JsonTest, Scalars)
{
    EXPECT_EQ(Json::null().dump(), "null");
    EXPECT_EQ(Json::boolean(true).dump(), "true");
    EXPECT_EQ(Json::boolean(false).dump(), "false");
    EXPECT_EQ(Json::number(static_cast<int64_t>(42)).dump(), "42");
    EXPECT_EQ(Json::number(-7.5).dump(), "-7.5");
    EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(JsonTest, NonFiniteNumbersBecomeNull)
{
    EXPECT_EQ(Json::number(
        std::numeric_limits<double>::infinity()).dump(), "null");
    EXPECT_EQ(Json::number(
        std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(JsonTest, EmptyContainers)
{
    EXPECT_EQ(Json::object().dump(), "{}");
    EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(JsonTest, ObjectCompact)
{
    Json json = Json::object();
    json.set("a", Json::number(static_cast<int64_t>(1)));
    json.set("b", Json::string("x"));
    EXPECT_EQ(json.dump(), "{\"a\":1,\"b\":\"x\"}");
}

TEST(JsonTest, SetOverwritesExistingKey)
{
    Json json = Json::object();
    json.set("a", Json::number(static_cast<int64_t>(1)));
    json.set("a", Json::number(static_cast<int64_t>(2)));
    EXPECT_EQ(json.size(), 1u);
    EXPECT_EQ(json.dump(), "{\"a\":2}");
}

TEST(JsonTest, ArrayAppend)
{
    Json json = Json::array();
    json.append(Json::number(static_cast<int64_t>(1)));
    json.append(Json::boolean(false));
    EXPECT_EQ(json.dump(), "[1,false]");
    EXPECT_EQ(json.size(), 2u);
}

TEST(JsonTest, Nesting)
{
    Json inner = Json::array();
    inner.append(Json::number(static_cast<int64_t>(1)));
    Json json = Json::object();
    json.set("xs", std::move(inner));
    EXPECT_EQ(json.dump(), "{\"xs\":[1]}");
}

TEST(JsonTest, PrettyPrinting)
{
    Json json = Json::object();
    json.set("a", Json::number(static_cast<int64_t>(1)));
    EXPECT_EQ(json.dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonTest, StringEscaping)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, EscapedStringsInDump)
{
    EXPECT_EQ(Json::string("a\"b").dump(), "\"a\\\"b\"");
}

TEST(JsonTest, RoundNumbersStayPrecise)
{
    EXPECT_EQ(Json::number(0.1).dump(),
              "0.10000000000000001"); // %.17g round-trip precision.
    EXPECT_EQ(Json::number(2.0).dump(), "2");
}

} // anonymous namespace
} // namespace hilp
