/**
 * @file
 * Profile: interval-based resource/group occupancy, the compact
 * replacement for the dense step-indexed Timetable.
 *
 * A Profile stores, per cumulative resource, a piecewise-constant
 * usage function as sorted breakpoints (time, level), and per
 * disjunctive group a sorted list of disjoint busy intervals.
 * Memory is O(placed intervals) instead of O(resources x horizon),
 * and the earliest-feasible-start query jumps over entire busy
 * intervals/segments instead of advancing one step past each
 * conflicting step.
 *
 * Two memory layouts implement the same contract bit-for-bit:
 *
 *  - packed (the default): one structure-of-arrays slab — flat
 *    contiguous start[]/level[] arrays with per-resource offset
 *    ranges (groups likewise), searched with branch-light galloping,
 *    plus per-mode resource-unit rows precomputed once (keyed on
 *    Mode::id) so the hot earliestStart path never converts doubles.
 *  - legacy: the historical vector-of-vectors AoS layout, retained
 *    as the measured baseline for the solver_micro layout sweep and
 *    as a second differential oracle.
 *
 * Every query answers identically in both layouts (the blocker-jump
 * scan's result is independent of which blocker bumps it), so search
 * trees built on either are bit-identical — the layout choice is
 * purely a performance knob.
 *
 * Resource levels are held in scaled integer units (see toUnits),
 * so place()/remove() round-trips are *exact*: no floating-point
 * drift can accumulate across the millions of place/remove cycles a
 * branch-and-bound search performs. The same units are used by the
 * dense Timetable, which survives as the brute-force reference
 * implementation for differential tests.
 */

#ifndef HILP_CP_PROFILE_HH
#define HILP_CP_PROFILE_HH

#include <cstdint>
#include <vector>

#include "model.hh"

namespace hilp {
namespace cp {

/** Resource amounts in scaled integer units (exact arithmetic). */
using Units = int64_t;

/** Scale factor: one unit is 2^-30 of a resource unit (~9.3e-10). */
inline constexpr int64_t kUnitScale = int64_t{1} << 30;

/**
 * Capacity comparison slack, in units (~7.5e-9 resource units).
 * Mirrors the floating-point epsilon the dense timetable historically
 * used (1e-9) while absorbing the half-unit rounding each toUnits()
 * conversion can contribute.
 */
inline constexpr Units kCapacitySlack = 8;

/** Convert a resource amount to scaled integer units. */
Units toUnits(double value);

/** Convert scaled integer units back to a resource amount. */
double fromUnits(Units units);

/**
 * Interval-based occupancy of the model's resources and groups.
 * Drop-in contract-compatible with the dense Timetable.
 */
class Profile
{
  public:
    /**
     * Build an empty profile for the model's resources/groups.
     * `packed` selects the SoA slab layout (default) over the legacy
     * AoS one; results are identical either way.
     */
    explicit Profile(const Model &model, bool packed = true);

    /**
     * Earliest start >= est at which the given mode fits: the whole
     * window [start, start + duration) must leave the mode's group
     * idle and keep all resource profiles within capacity. Returns
     * -1 when no feasible start exists before the horizon.
     */
    Time earliestStart(const Mode &mode, Time est) const;

    /** True when the mode can be placed with its window at start. */
    bool fits(const Mode &mode, Time start) const;

    /** Commit a mode over [start, start + duration). */
    void place(const Mode &mode, Time start);

    /** Exactly undo a previous place() with the same arguments. */
    void remove(const Mode &mode, Time start);

    /** Resource usage of resource r at time step. */
    double usage(int r, Time step) const;

    /** Exact resource usage of resource r at step, in units. */
    Units usageUnits(int r, Time step) const;

    /** True when group g is busy at time step. */
    bool groupBusy(int g, Time step) const;

    /** The model's horizon. */
    Time horizon() const { return horizon_; }

    /** True when this profile uses the packed SoA slab layout. */
    bool packedLayout() const { return packed_; }

    /** Breakpoints currently stored for resource r (diagnostics). */
    size_t breakpoints(int r) const
    {
        return packed_ ? static_cast<size_t>(resLen_[r])
                       : resources_[r].size();
    }

    /** Busy intervals currently stored for group g (diagnostics). */
    size_t intervals(int g) const
    {
        return packed_ ? static_cast<size_t>(grpLen_[g])
                       : groups_[g].size();
    }

    /**
     * Heap bytes currently committed to occupancy storage (slab or
     * vector capacities). Sampled around a search, the growth is the
     * profile's contribution to scratch allocation — near zero in
     * steady state for both layouts.
     */
    size_t heapBytes() const;

  private:
    /**
     * One piece of a piecewise-constant usage function: `level`
     * holds from `start` until the next segment's start (or the
     * horizon for the last segment). Invariants: segments are sorted,
     * the first always starts at 0, and adjacent segments have
     * different levels (canonical form), so an exact place/remove
     * round-trip restores the identical representation.
     */
    struct Segment
    {
        Time start;
        Units level;
    };

    /** A busy interval [start, end) of a disjunctive group. */
    struct Interval
    {
        Time start;
        Time end;
    };

    // -- Legacy (AoS) helpers. ------------------------------------

    /** Index of the segment of resource r containing step. */
    size_t segmentAt(int r, Time step) const;

    /** Add delta to resource r over [start, end), keeping canon. */
    void addUsage(int r, Time start, Time end, Units delta);

    /**
     * First candidate start after a group conflict in [start, end):
     * the end of the first busy interval of g intersecting the
     * window, or -1 when the window leaves the group idle.
     */
    Time groupBlock(int g, Time start, Time end) const;

    /**
     * First candidate start after a capacity conflict of resource r
     * in [start, end) given `need` extra units: the end of the first
     * over-committed segment, or -1 when the window has room.
     */
    Time resourceBlock(int r, Units need, Time start, Time end) const;

    Time earliestStartLegacy(const Mode &mode, Time est) const;
    bool fitsLegacy(const Mode &mode, Time start) const;
    void placeLegacy(const Mode &mode, Time start);
    void removeLegacy(const Mode &mode, Time start);

    // -- Packed (SoA slab) helpers. -------------------------------

    /** Same contracts as the legacy helpers, on the flat slab. */
    Time groupBlockPacked(int g, Time start, Time end) const;
    Time resourceBlockPacked(int r, Units need, Time start,
                             Time end) const;
    void addUsagePacked(int r, Time start, Time end, Units delta);

    /** Grow resource r's slab region (rebuilds the slab). */
    void growResource(int r);

    /** Grow group g's slab region (rebuilds the slab). */
    void growGroup(int g);

    /**
     * Resolve the mode's per-resource units and the list of
     * resources it actually consumes: the precomputed row for modes
     * with an id, a scratch conversion for hand-built ones.
     */
    void modeRow(const Mode &mode, const Units **units,
                 const int32_t **nz, int32_t *nnz) const;

    /**
     * Resolve the mode's non-zero resources and the precomputed
     * per-resource level limits (capacity + slack - need) that
     * earliestStart sweeps against.
     */
    void modeSweepRow(const Mode &mode, const int32_t **nz,
                      const Units **limits, int32_t *nnz) const;

    const Model &model_;
    Time horizon_;
    bool packed_;

    /** Per-resource capacity in units (both layouts). */
    std::vector<Units> capUnits_;
    /** Scratch: per-resource units for id-less modes. */
    mutable std::vector<Units> unitsScratch_;
    /** Scratch: non-zero resource list for id-less modes. */
    mutable std::vector<int32_t> nzScratch_;
    /** Scratch: per-resource sweep limits for id-less modes. */
    mutable std::vector<Units> limScratch_;
    /**
     * Per-resource sweep state for earliestStart: segment base
     * pointers, length, current containing-segment cursor, and the
     * precomputed level limit, gathered contiguously so the window
     * scan touches a single small array.
     */
    struct SweepCursor
    {
        const Time *starts;
        const Units *levels;
        int32_t len;
        int32_t cur;
        Units limit;
    };
    /** Scratch: earliestStart's active sweep cursors. */
    mutable std::vector<SweepCursor> sweepScratch_;

    // Legacy layout.
    /** resources_[r]: canonical sorted segments covering [0, horizon). */
    std::vector<std::vector<Segment>> resources_;
    /** groups_[g]: sorted, disjoint busy intervals. */
    std::vector<std::vector<Interval>> groups_;

    // Packed layout: one slab per array family, with per-resource
    // (per-group) offset/length/capacity ranges. Regions grow by
    // doubling, which rebuilds the slab — rare after warm-up.
    std::vector<int32_t> resOff_, resLen_, resCap_;
    std::vector<Time> segStart_;
    std::vector<Units> segLevel_;
    std::vector<int32_t> grpOff_, grpLen_, grpCap_;
    std::vector<Time> ivStart_, ivEnd_;
    /** Mode id -> row of numResources() precomputed units. */
    std::vector<Units> modeUnits_;
    /** Mode id -> its non-zero resource indices (ascending). */
    std::vector<int32_t> modeNzOff_, modeNzLen_;
    std::vector<int32_t> nzRes_;
    /** Parallel to nzRes_: the mode's level limit on that resource. */
    std::vector<Units> nzLimit_;
};

} // namespace cp
} // namespace hilp

#endif // HILP_CP_PROFILE_HH
