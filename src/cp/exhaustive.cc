#include "exhaustive.hh"

#include "support/logging.hh"

namespace hilp {
namespace cp {

uint64_t
exhaustiveSpaceSize(const Model &model)
{
    uint64_t total = 1;
    for (int t = 0; t < model.numTasks(); ++t) {
        uint64_t per_task =
            static_cast<uint64_t>(model.task(t).modes.size()) *
            static_cast<uint64_t>(model.horizon());
        if (per_task == 0)
            return 0;
        if (total > UINT64_MAX / per_task)
            return UINT64_MAX;
        total *= per_task;
    }
    return total;
}

ExhaustiveResult
solveExhaustively(const Model &model, uint64_t max_candidates)
{
    ExhaustiveResult result;
    std::string issue = model.validate();
    if (!issue.empty())
        fatal("invalid model for exhaustive solve: %s",
              issue.c_str());

    const int n = model.numTasks();
    if (n == 0) {
        result.complete = true;
        result.feasible = true;
        result.optimum = 0;
        return result;
    }

    ScheduleVec candidate;
    candidate.tasks.assign(n, Assignment{});
    std::vector<int> mode(n, 0);
    std::vector<Time> start(n, 0);

    for (;;) {
        if (++result.candidates > max_candidates)
            return result; // complete stays false.

        bool in_horizon = true;
        for (int t = 0; t < n && in_horizon; ++t) {
            candidate.tasks[t] = {mode[t], start[t]};
            in_horizon =
                start[t] + model.task(t).modes[mode[t]].duration <=
                model.horizon();
        }
        if (in_horizon && checkSchedule(model, candidate).empty()) {
            Time makespan = candidate.makespan(model);
            if (result.optimum < 0 || makespan < result.optimum) {
                result.optimum = makespan;
                result.best = candidate;
                result.feasible = true;
            }
        }

        // Advance the odometer over (start, mode) per task.
        int t = 0;
        for (; t < n; ++t) {
            if (++start[t] < model.horizon())
                break;
            start[t] = 0;
            if (++mode[t] <
                static_cast<int>(model.task(t).modes.size()))
                break;
            mode[t] = 0;
        }
        if (t == n)
            break;
    }
    result.complete = true;
    return result;
}

} // namespace cp
} // namespace hilp
