/**
 * @file
 * The design-space explorer: evaluate a workload on every SoC in a
 * configuration list under MA, HILP, or Gables semantics, in
 * parallel, and report speedup/area/WLP per design point (the data
 * behind Figures 7 and 8).
 *
 * HILP sweeps reuse solver work across configurations (see
 * DESIGN.md section 7): configs are ordered into similarity chains
 * (same CPU cores and DSA allocation, ascending GPU size) so each
 * solve warm-starts from its neighbor's schedule, identical lowered
 * instances are served from a fingerprint-keyed cache, and a shared
 * best-point bound lets provably dominated configs skip resolution
 * refinement. Reuse changes effort, never certified results; set
 * DseOptions::reuse = false for the cold-start behavior.
 */

#ifndef HILP_DSE_EXPLORE_HH
#define HILP_DSE_EXPLORE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/soc.hh"
#include "hilp/builder.hh"
#include "hilp/engine.hh"
#include "pareto.hh"
#include "workload/workload.hh"

namespace hilp {
namespace dse {

class SweepCheckpoint;

/** Which performance model evaluates the design points. */
enum class ModelKind { MultiAmdahl, Hilp, Gables };

/** Human-readable model name. */
const char *toString(ModelKind kind);

/** One evaluated design point. */
struct DsePoint
{
    arch::SocConfig config;
    double areaMm2 = 0.0;
    bool ok = false;        //!< The workload could be scheduled.
    double makespanS = 0.0;
    double speedup = 0.0;   //!< Vs. 1-CPU fully sequential execution.
    double gap = 0.0;       //!< Optimality gap (0 for MA).
    double averageWlp = 0.0;
    AccelMix mix = AccelMix::None;

    /**
     * Why the point failed when ok is false: the spec's
     * infeasibility reason ("unschedulable under budget") or the
     * solver's terminal status ("solver gave up"). Empty on success.
     */
    std::string note;
    /** Final solver status (Optimal for the analytic MA model). */
    cp::SolveStatus status = cp::SolveStatus::NoSolution;
    /**
     * Instance identity across runs: ProblemSpec::fingerprint() of
     * the lowered problem (0 when lowering never happened, e.g. a
     * fault before the build). Keys the sweep checkpoint.
     */
    uint64_t fingerprint = 0;

    // Robustness outcome flags (see DESIGN.md section 10).
    /**
     * The per-point deadline expired mid-evaluation: the makespan and
     * gap come from the best incumbent (or the list-scheduler
     * fallback), still certified but possibly wider than an
     * unconstrained evaluation's.
     */
    bool degraded = false;
    /**
     * The evaluation threw (and the retry failed too); note carries
     * the exception text. The rest of the sweep was unaffected.
     */
    bool errored = false;
    /** Served from a --resume checkpoint instead of re-evaluated. */
    bool resumed = false;

    /**
     * Trace context of the request that evaluated this point (0 in
     * batch mode). Stamped by the service sweep core, carried into
     * checkpoint records and streamed daemon responses so a point
     * can be joined against its request's spans and flight-recorder
     * entry.
     */
    uint64_t traceId = 0;

    // Solver-effort telemetry (zero for MA and for cache hits).
    int64_t nodes = 0;        //!< B&B nodes across all solves.
    int64_t backtracks = 0;   //!< B&B backtracks across all solves.
    int solves = 0;           //!< CP solves (resolutions x attempts).
    double solveSeconds = 0.0; //!< Solver wall-clock spent.
    bool cacheHit = false;    //!< Served from the sweep's solve cache.
    bool warmStarted = false; //!< Neighbor schedule seeded the solve.
    bool pruned = false;      //!< Refinement skipped: point dominated.
    /**
     * Per-propagator telemetry merged across the point's solves
     * (empty for MA/Gables and for cache hits).
     */
    std::vector<cp::PropagatorStats> propagators;
};

/** Exploration configuration. */
struct DseOptions
{
    EngineOptions engine = EngineOptions::explorationMode();
    BuildOptions build;
    /** Worker threads; 0 = hardware concurrency. */
    int threads = 0;
    /**
     * Enable cross-config solver reuse for HILP sweeps (warm-start
     * chains, the solve cache, dominance pruning). Off reproduces
     * the cold-start behavior exactly.
     */
    bool reuse = true;
    /**
     * Optional solve cache shared across sweeps. The caller must
     * keep the engine options identical for every sweep using the
     * same memo. Null means one private cache per exploreSpace call.
     */
    SolveMemo *memo = nullptr;
    /**
     * Restore the pre-fault-isolation behavior: a point evaluation
     * that throws aborts the whole sweep (the exception propagates
     * out of exploreSpace). Off (the default), the sweep catches the
     * exception, retries the point once with a reduced node budget,
     * and on a second failure records it as an errored point while
     * the rest of the sweep completes.
     */
    bool failFast = false;
    /**
     * Optional sweep checkpoint (see checkpoint.hh). Completed points
     * are appended to it as they finish; points already present (from
     * a previous interrupted run loaded with --resume) are served
     * from it, marked resumed, instead of re-evaluated. Null disables
     * checkpointing.
     */
    SweepCheckpoint *checkpoint = nullptr;
    /**
     * Test hook for fault-isolation coverage: called at the start of
     * every point evaluation (after the checkpoint shortcut, which a
     * fault could never reach); an exception it throws behaves
     * exactly like a fault inside the evaluation (isolated, retried
     * once, rethrown under failFast). Null in production.
     */
    std::function<void(const arch::SocConfig &)> injectFault;
};

/**
 * Evaluate the workload on every configuration under the given
 * model. Points are returned in configuration order; unschedulable
 * configurations come back with ok == false and a diagnostic note.
 */
std::vector<DsePoint> exploreSpace(
    const std::vector<arch::SocConfig> &configs,
    const workload::Workload &workload,
    const arch::Constraints &constraints, ModelKind kind,
    const DseOptions &options);

/** Evaluate one configuration (the exploreSpace worker body). */
DsePoint evaluatePoint(const arch::SocConfig &config,
                       const workload::Workload &workload,
                       const arch::Constraints &constraints,
                       ModelKind kind, const DseOptions &options);

/**
 * Group configuration indices into similarity chains: same CPU core
 * count and same DSA allocation (count, PE size, targets,
 * advantage), ordered by ascending GPU SM count within a chain.
 * Neighbors differ only in GPU capacity, so their optimal schedules
 * transfer well as warm starts. The in-process sweep warm-starts
 * along these chains; the distributed coordinator hands them out
 * whole as work units, so the chains survive the split.
 */
std::vector<std::vector<size_t>> similarityChains(
    const std::vector<arch::SocConfig> &configs);

} // namespace dse
} // namespace hilp

#endif // HILP_DSE_EXPLORE_HH
