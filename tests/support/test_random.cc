/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "support/random.hh"

namespace hilp {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntSingletonRange)
{
    Rng rng(9);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(0, 9));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntIsRoughlyUniform)
{
    Rng rng(13);
    std::vector<int> counts(10, 0);
    const int samples = 100000;
    for (int i = 0; i < samples; ++i)
        ++counts[rng.uniformInt(0, 9)];
    for (int count : counts) {
        EXPECT_GT(count, samples / 10 * 0.9);
        EXPECT_LT(count, samples / 10 * 1.1);
    }
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniformDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformDoubleRange)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformDouble(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i)
        if (rng.chance(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / samples, 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(31);
    const int samples = 100000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < samples; ++i) {
        double v = rng.gaussian(2.0, 3.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / samples;
    double var = sq / samples - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(37);
    std::vector<int> xs(100);
    std::iota(xs.begin(), xs.end(), 0);
    std::vector<int> shuffled = xs;
    rng.shuffle(shuffled);
    EXPECT_NE(shuffled, xs); // Astronomically unlikely to be equal.
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, xs);
}

TEST(Rng, ShuffleEmptyAndSingleton)
{
    Rng rng(41);
    std::vector<int> empty;
    rng.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int> one = {5};
    rng.shuffle(one);
    EXPECT_EQ(one, std::vector<int>{5});
}

} // anonymous namespace
} // namespace hilp
