/** @file Unit tests for the statistics helpers. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/stats.hh"

namespace hilp {
namespace {

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, SumBasic)
{
    EXPECT_DOUBLE_EQ(sum({1.5, 2.5, -1.0}), 3.0);
    EXPECT_DOUBLE_EQ(sum({}), 0.0);
}

TEST(Stats, VarianceOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(variance({5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, VarianceKnownValue)
{
    // Population variance of {2, 4, 4, 4, 5, 5, 7, 9} is 4.
    EXPECT_DOUBLE_EQ(variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0);
    EXPECT_DOUBLE_EQ(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(Stats, VarianceOfSingletonIsZero)
{
    EXPECT_DOUBLE_EQ(variance({42.0}), 0.0);
}

TEST(Stats, GeomeanBasic)
{
    EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, GeomeanSingleElement)
{
    EXPECT_NEAR(geomean({7.0}), 7.0, 1e-12);
}

TEST(Stats, MinMax)
{
    std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
    EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 7.0);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {2, 4, 6, 8};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(Stats, LinearFitExact)
{
    // y = 3x + 1.
    LinearFit fit = linearFit({0, 1, 2, 3}, {1, 4, 7, 10});
    EXPECT_NEAR(fit.slope, 3.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitNoisyR2BelowOne)
{
    LinearFit fit = linearFit({0, 1, 2, 3}, {1.0, 4.5, 6.5, 10.0});
    EXPECT_GT(fit.r2, 0.9);
    EXPECT_LT(fit.r2, 1.0);
    EXPECT_NEAR(fit.slope, 2.9, 0.2);
}

TEST(Stats, LinearFitTwoPointsIsExact)
{
    LinearFit fit = linearFit({1, 3}, {5, 9});
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitDegenerateVerticalData)
{
    LinearFit fit = linearFit({2, 2, 2}, {1, 2, 3});
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
    EXPECT_DOUBLE_EQ(fit.r2, 0.0);
}

TEST(RunningStats, EmptyAccumulator)
{
    RunningStats acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(RunningStats, MatchesBatchStatistics)
{
    std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    RunningStats acc;
    for (double x : xs)
        acc.add(x);
    EXPECT_EQ(acc.count(), xs.size());
    EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(acc.stddev(), stddev(xs), 1e-12);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats acc;
    acc.add(-3.5);
    EXPECT_DOUBLE_EQ(acc.mean(), -3.5);
    EXPECT_DOUBLE_EQ(acc.min(), -3.5);
    EXPECT_DOUBLE_EQ(acc.max(), -3.5);
    EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

} // anonymous namespace
} // namespace hilp
