/**
 * @file
 * Figure 7: the 372-SoC design space for the Default workload under
 * MA, Gables, and HILP (600 W budget for MA/HILP; Gables has no
 * power constraint). Regenerates the Pareto fronts (7a), reports the
 * highest-performing SoCs and their areas (the paper's headline
 * quantitative comparison), and summarizes the accelerator-mix
 * structure of the full clouds (7b-7d): MA's front is GPU-dominated,
 * Gables is biased to many small DSAs, HILP recommends mixed SoCs.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common.hh"
#include "dse/report.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

void
emitModel(dse::ModelKind kind,
          const std::vector<arch::SocConfig> &configs,
          const workload::Workload &wl)
{
    arch::Constraints constraints; // 600 W, 800 GB/s.
    dse::DseOptions options = bench::explorationOptions(1.0);
    // Through the evaluation service: in-process by default, against
    // a hilpd daemon under --connect (same results either way).
    auto points = bench::runSweep(configs, wl, constraints, kind,
                                  options);

    if (kind == dse::ModelKind::Hilp) {
        std::printf("%s solver effort: %s\n", dse::toString(kind),
                    dse::toString(dse::summarizeSweep(points)).c_str());
        // Machine-readable sweep report: per-point rows, the summary,
        // and the metrics-registry snapshot in one file.
        std::string report = dse::sweepReportJson(points).dump(2);
        report += '\n';
        if (std::FILE *file = std::fopen("FIG7_sweep.json", "w")) {
            std::fwrite(report.data(), 1, report.size(), file);
            std::fclose(file);
            std::printf("wrote HILP sweep report to FIG7_sweep.json\n");
        }
    }

    auto front = bench::paretoOf(points);
    bench::printPareto(std::string(dse::toString(kind)) +
                       " Pareto front (speedup vs area)", front);

    dse::DsePoint best = bench::bestOf(front);
    std::printf("\n%s best point: %s  speedup %.1f  area %.1f mm2\n",
                dse::toString(kind), best.config.name().c_str(),
                best.speedup, best.areaMm2);

    // Accelerator-mix structure of the Pareto front (the color
    // story of Figures 7b-7d).
    std::map<dse::AccelMix, int> mix_counts;
    for (const auto &point : front)
        ++mix_counts[point.mix];
    std::printf("%s front mix: gpu=%d dsa=%d mixed=%d none=%d\n",
                dse::toString(kind),
                mix_counts[dse::AccelMix::GpuDominated],
                mix_counts[dse::AccelMix::DsaDominated],
                mix_counts[dse::AccelMix::Mixed],
                mix_counts[dse::AccelMix::None]);
}

void
emitFigure()
{
    bench::banner(
        "Figure 7 - the Default-workload design space (372 SoCs)",
        "Paper headline points: MA (c1,g64,d0^0) spd 18.2 @ 432.6;\n"
        "Gables (c4,g4,d3^4) spd 62.1 @ 170.4; HILP (c4,g16,d2^16)\n"
        "spd 45.6 @ 378.4. Expected structure: MA GPU-dominated,\n"
        "Gables many-small-DSA biased, HILP mixed; MA pessimistic\n"
        "and Gables optimistic relative to HILP.");

    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto configs = bench::paperDesignSpace();
    if (bench::maxConfigs() > 0 && configs.size() > bench::maxConfigs())
        configs.resize(bench::maxConfigs());
    std::printf("design space: %zu configurations\n",
                configs.size());

    emitModel(dse::ModelKind::MultiAmdahl, configs, wl);
    emitModel(dse::ModelKind::Gables, configs, wl);
    emitModel(dse::ModelKind::Hilp, configs, wl);

    // A truncated space is a smoke run; the paper comparison below
    // only means something on the full design space.
    if (bench::maxConfigs() > 0)
        return;

    // The paper's key qualitative check: the mixed HILP SoC matches
    // the big-GPU SoC at lower area.
    bench::section("Key Insight 3 check (DSAs offload the GPU)");
    arch::Constraints constraints;
    dse::DseOptions options = bench::explorationOptions(2.0);
    auto priority = workload::dsaPriorityOrder();
    arch::SocConfig mixed;
    mixed.cpuCores = 4;
    mixed.gpuSms = 16;
    mixed.dsas = {{16, priority[0]}, {16, priority[1]}};
    arch::SocConfig big_gpu;
    big_gpu.cpuCores = 4;
    big_gpu.gpuSms = 64;
    auto mixed_point = dse::evaluatePoint(
        mixed, wl, constraints, dse::ModelKind::Hilp, options);
    auto gpu_point = dse::evaluatePoint(
        big_gpu, wl, constraints, dse::ModelKind::Hilp, options);
    std::printf("(c4,g16,d2^16): speedup %.1f @ %.1f mm2\n",
                mixed_point.speedup, mixed_point.areaMm2);
    std::printf("(c4,g64,d0^0) : speedup %.1f @ %.1f mm2\n",
                gpu_point.speedup, gpu_point.areaMm2);
    std::printf("paper: equal performance, 378.4 vs 482.4 mm2\n");
}

void
BM_ExploreSubsetOfDesignSpace(benchmark::State &state)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto configs = bench::paperDesignSpace();
    configs.resize(8);
    dse::DseOptions options = bench::explorationOptions(0.5);
    for (auto _ : state) {
        auto points =
            dse::exploreSpace(configs, wl, arch::Constraints{},
                              dse::ModelKind::Hilp, options);
        benchmark::DoNotOptimize(points.size());
    }
}
BENCHMARK(BM_ExploreSubsetOfDesignSpace)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    if (hilp::bench::noReuse())
        std::printf("cross-config solver reuse disabled\n");

    emitFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
