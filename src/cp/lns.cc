/** @file Large-neighborhood search implementation. See lns.hh. */

#include "lns.hh"

#include <algorithm>
#include <vector>

#include "list_scheduler.hh"
#include "search.hh"
#include "support/hash.hh"
#include "support/random.hh"

namespace hilp {
namespace cp {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsUntil(Clock::time_point deadline)
{
    if (deadline == Clock::time_point::max())
        return 1e9;
    return std::chrono::duration<double>(deadline - Clock::now())
        .count();
}

/**
 * Priority order of the incumbent: tasks by (start, topological
 * position). Re-running the SGS on this order reproduces a schedule
 * at least as good as the incumbent, so it is the natural base the
 * destroy operators perturb.
 */
std::vector<int>
incumbentOrder(const Model &model, const ScheduleVec &schedule,
               const std::vector<int> &topo_pos)
{
    std::vector<int> order(model.numTasks());
    for (int t = 0; t < model.numTasks(); ++t)
        order[t] = t;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        Time sa = schedule.tasks[a].start;
        Time sb = schedule.tasks[b].start;
        if (sa != sb)
            return sa < sb;
        return topo_pos[a] < topo_pos[b];
    });
    return order;
}

} // anonymous namespace

LnsResult
lnsImprove(const Model &model, const ScheduleVec &incumbent,
           const LnsOptions &options)
{
    LnsResult result;
    result.schedule = incumbent;
    result.makespan = incumbent.makespan(model);
    const int n = model.numTasks();
    if (n == 0)
        return result;

    Clock::time_point deadline = options.deadline;
    if (options.maxSeconds < 1e8) {
        Clock::time_point budget =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(options.maxSeconds));
        if (budget < deadline)
            deadline = budget;
    }

    std::vector<int> topo_pos(n);
    {
        std::vector<int> topo = model.topologicalOrder();
        for (int i = 0; i < n; ++i)
            topo_pos[topo[i]] = i;
    }

    auto gapReached = [&]() {
        if (options.lowerBound <= 0)
            return result.makespan <= 0;
        if (result.makespan <= options.lowerBound)
            return true;
        double gap =
            static_cast<double>(result.makespan - options.lowerBound) /
            static_cast<double>(result.makespan);
        return gap <= options.targetGap;
    };

    // Warm-started bounded B&B: the warm start seeds its incumbent,
    // so the polish can only improve the schedule.
    auto polish = [&]() {
        if (options.polishNodes <= 0 || gapReached())
            return;
        double remaining = secondsUntil(deadline);
        if (remaining <= 0.0)
            return;
        SearchLimits limits;
        limits.maxNodes = options.polishNodes;
        limits.maxSeconds = remaining;
        limits.deadline = deadline;
        limits.targetGap = options.targetGap;
        limits.lowerBound = options.lowerBound;
        limits.useNogoods = options.useNogoods;
        limits.packedLayout = options.packedLayout;
        SearchResult r = branchAndBound(model, &result.schedule, limits);
        ++result.polishes;
        result.polishNodes += r.nodes;
        if (r.foundSolution && r.bestMakespan < result.makespan) {
            result.schedule = r.best;
            result.makespan = r.bestMakespan;
            ++result.improvements;
        }
    };

    Rng rng(options.seed);
    Hasher trajectory;
    std::vector<int> base = incumbentOrder(model, result.schedule,
                                           topo_pos);
    std::vector<int> forced(n);
    std::vector<char> freed(n);
    std::vector<int> priority;
    std::vector<int> slots;
    std::vector<int> moved;

    const int half = options.iterations / 2;
    for (int it = 0; it < options.iterations; ++it) {
        if (gapReached() || Clock::now() >= deadline)
            break;
        if (it == half)
            polish();

        // Destroy: pick a neighborhood of the incumbent to free.
        std::fill(freed.begin(), freed.end(), 0);
        const int op = static_cast<int>(rng.uniformInt(0, 2));
        if (op == 0) {
            // Time window around a random task's start.
            int pivot = static_cast<int>(rng.uniformInt(0, n - 1));
            Time center = result.schedule.tasks[pivot].start;
            Time w = std::max<Time>(1, result.makespan / 4);
            for (int t = 0; t < n; ++t) {
                const Assignment &a = result.schedule.tasks[t];
                Time end = a.start +
                           model.task(t).modes[a.mode].duration;
                if (end >= center - w && a.start <= center + w)
                    freed[t] = 1;
            }
        } else if (op == 1 && model.numGroups() > 0) {
            // One device group's tasks (frees the whole machine).
            int g = static_cast<int>(
                rng.uniformInt(0, model.numGroups() - 1));
            for (int t = 0; t < n; ++t) {
                const Assignment &a = result.schedule.tasks[t];
                if (model.task(t).modes[a.mode].group == g)
                    freed[t] = 1;
            }
        }
        int num_freed = 0;
        for (int t = 0; t < n; ++t)
            num_freed += freed[t];
        if (num_freed == 0) {
            // Group op hit an idle device, or fall-through: free a
            // random subset.
            int k = 2 + static_cast<int>(
                            rng.uniformInt(0, std::max(2, n / 4)));
            for (int i = 0; i < k; ++i)
                freed[rng.uniformInt(0, n - 1)] = 1;
        }
        trajectory.u64(static_cast<uint64_t>(op));
        for (int t = 0; t < n; ++t)
            if (freed[t])
                trajectory.u64(static_cast<uint64_t>(t));
        trajectory.u64(~0ull); // Iteration separator.

        // Repair: fixed tasks keep their incumbent mode, freed tasks
        // re-choose; freed tasks are permuted among their own slots
        // in the incumbent priority order (fixed tasks keep theirs,
        // so the repair stays anchored to the incumbent).
        for (int t = 0; t < n; ++t)
            forced[t] = freed[t] ? -1 : result.schedule.tasks[t].mode;
        priority = base;
        slots.clear();
        moved.clear();
        for (int i = 0; i < n; ++i) {
            if (freed[priority[i]]) {
                slots.push_back(i);
                moved.push_back(priority[i]);
            }
        }
        rng.shuffle(moved);
        for (size_t i = 0; i < slots.size(); ++i)
            priority[slots[i]] = moved[i];

        ListResult repaired = listSchedule(model, priority, forced);
        ++result.iterations;
        if (repaired.feasible && repaired.makespan <= result.makespan) {
            if (repaired.makespan < result.makespan)
                ++result.improvements;
            result.schedule = repaired.schedule;
            result.makespan = repaired.makespan;
            base = incumbentOrder(model, result.schedule, topo_pos);
        }
    }

    polish();
    result.trajectoryDigest = trajectory.digest();
    return result;
}

} // namespace cp
} // namespace hilp
