/**
 * @file
 * A small fixed-size thread pool used to evaluate independent SoC
 * configurations in parallel during design space exploration, plus
 * the process-wide thread budget that arbitrates CPU slots between
 * the outer sweep pool and the solver's inner parallel search.
 */

#ifndef HILP_SUPPORT_THREAD_POOL_HH
#define HILP_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hilp {

/**
 * A counting semaphore over the machine's CPU slots, shared by every
 * layer that spawns threads. The convention: a thread that is
 * *running* work holds one slot (the thread a caller already runs on
 * is implicitly budgeted), and helpers beyond that are claimed with
 * tryAcquire before being spawned. Budget-aware ThreadPool workers
 * hold a slot only while executing a task and return it while idle,
 * so during a sweep's tail the slots of drained outer workers become
 * available to a hard inner solve instead of oversubscribing the
 * machine.
 *
 * acquire() blocks until slots free up and is only used by pool
 * workers (which always eventually get their slot back because every
 * borrower releases in bounded time); code on a solve path must use
 * the non-blocking tryAcquire and degrade to fewer threads.
 */
class ThreadBudget
{
  public:
    /** A budget of `total` slots (0 means hardware concurrency). */
    explicit ThreadBudget(int total = 0);

    ThreadBudget(const ThreadBudget &) = delete;
    ThreadBudget &operator=(const ThreadBudget &) = delete;

    /** The process-wide budget (hardware-concurrency slots). */
    static ThreadBudget &global();

    /** Total slots in the budget. */
    int total() const { return total_; }

    /** Currently unclaimed slots (a racy snapshot, for telemetry). */
    int available() const;

    /**
     * Claim up to `want` slots without blocking; returns how many
     * were granted (possibly 0).
     */
    int tryAcquire(int want);

    /** Claim exactly n slots, blocking until they are free. */
    void acquire(int n);

    /** Return n previously claimed slots. */
    void release(int n);

    /** RAII ownership of slots claimed from a budget. */
    class Lease
    {
      public:
        Lease() = default;
        Lease(ThreadBudget &budget, int count)
            : budget_(&budget), count_(count) {}
        ~Lease() { reset(); }

        Lease(Lease &&other) noexcept
            : budget_(other.budget_), count_(other.count_)
        {
            other.budget_ = nullptr;
            other.count_ = 0;
        }

        Lease &
        operator=(Lease &&other) noexcept
        {
            if (this != &other) {
                reset();
                budget_ = other.budget_;
                count_ = other.count_;
                other.budget_ = nullptr;
                other.count_ = 0;
            }
            return *this;
        }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        /** Slots held by this lease. */
        int count() const { return count_; }

        /** Release the held slots early. */
        void
        reset()
        {
            if (budget_ && count_ > 0)
                budget_->release(count_);
            budget_ = nullptr;
            count_ = 0;
        }

      private:
        ThreadBudget *budget_ = nullptr;
        int count_ = 0;
    };

    /** Claim up to `want` slots without blocking, as a lease. */
    Lease lease(int want) { return Lease(*this, tryAcquire(want)); }

  private:
    const int total_;
    mutable std::mutex mutex_;
    std::condition_variable freed_;
    int available_;
};

/**
 * Fixed-size worker pool. Tasks are void() callables. A throw from a
 * task is captured on the worker (it never escapes into the worker
 * thread); the first captured exception is rethrown by the next
 * wait() / parallelFor() on the submitting thread, after all
 * outstanding tasks have drained. Later exceptions from the same
 * batch are dropped.
 */
class ThreadPool
{
  public:
    /**
     * Create a pool with the given number of workers (0 means
     * hardware concurrency, at least 1). With a non-null budget each
     * worker claims one slot (blocking) before running a task and
     * returns it afterwards, so at most `budget->total()` pool tasks
     * execute concurrently and idle workers lend their slots to
     * whoever else draws on the same budget.
     */
    explicit ThreadPool(size_t num_threads = 0,
                        ThreadBudget *budget = nullptr);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for execution. */
    void submit(std::function<void()> task);

    /**
     * Block until all submitted tasks have completed. Rethrows the
     * first exception any of them raised (clearing it, so the pool
     * stays usable afterwards).
     */
    void wait();

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /**
     * Run fn(i) for each i in [0, n) across the pool and wait for
     * completion. fn must be safe to invoke concurrently for
     * distinct indices. Rethrows the first exception fn raised;
     * remaining indices may or may not have run by then.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    void workerLoop();

    ThreadBudget *budget_ = nullptr;
    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    size_t inFlight_ = 0;
    bool shutdown_ = false;
    /** First exception thrown by a task since the last wait(). */
    std::exception_ptr firstError_;
};

} // namespace hilp

#endif // HILP_SUPPORT_THREAD_POOL_HH
