/** @file Unit tests for the dense two-phase simplex LP solver. */

#include <gtest/gtest.h>

#include <cmath>

#include "lp/lp.hh"

namespace hilp {
namespace lp {
namespace {

TEST(Lp, TrivialUnconstrainedMinimumAtLowerBounds)
{
    Problem p;
    p.addVariable(0.0, kInf, 1.0);
    p.addVariable(2.0, kInf, 3.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, 6.0, 1e-9);
    EXPECT_NEAR(s.x[0], 0.0, 1e-9);
    EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(Lp, ClassicTwoVariableMaximization)
{
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18
    // (a textbook problem; optimum x=2, y=6, objective 36).
    Problem p;
    int x = p.addVariable(0.0, kInf, -3.0);
    int y = p.addVariable(0.0, kInf, -5.0);
    p.addConstraint({{x, 1.0}}, Relation::LessEqual, 4.0);
    p.addConstraint({{y, 2.0}}, Relation::LessEqual, 12.0);
    p.addConstraint({{x, 3.0}, {y, 2.0}}, Relation::LessEqual, 18.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, -36.0, 1e-9);
    EXPECT_NEAR(s.x[x], 2.0, 1e-9);
    EXPECT_NEAR(s.x[y], 6.0, 1e-9);
}

TEST(Lp, GreaterEqualConstraintsNeedPhase1)
{
    // min x + y s.t. x + 2y >= 4, 3x + y >= 6; optimum at the
    // intersection (8/5, 6/5), objective 14/5.
    Problem p;
    int x = p.addVariable(0.0, kInf, 1.0);
    int y = p.addVariable(0.0, kInf, 1.0);
    p.addConstraint({{x, 1.0}, {y, 2.0}}, Relation::GreaterEqual, 4.0);
    p.addConstraint({{x, 3.0}, {y, 1.0}}, Relation::GreaterEqual, 6.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, 14.0 / 5.0, 1e-9);
    EXPECT_NEAR(s.x[x], 8.0 / 5.0, 1e-9);
    EXPECT_NEAR(s.x[y], 6.0 / 5.0, 1e-9);
}

TEST(Lp, EqualityConstraint)
{
    // min x + 2y s.t. x + y = 3, x <= 1 -> x=1, y=2, objective 5.
    Problem p;
    int x = p.addVariable(0.0, 1.0, 1.0);
    int y = p.addVariable(0.0, kInf, 2.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 3.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, 5.0, 1e-9);
    EXPECT_NEAR(s.x[x], 1.0, 1e-9);
    EXPECT_NEAR(s.x[y], 2.0, 1e-9);
}

TEST(Lp, EqualityPrefersCheapVariable)
{
    // min 2x + y s.t. x + y = 3 -> y=3, objective 3.
    Problem p;
    int x = p.addVariable(0.0, kInf, 2.0);
    int y = p.addVariable(0.0, kInf, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 3.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, 3.0, 1e-9);
    EXPECT_NEAR(s.x[x], 0.0, 1e-9);
    EXPECT_NEAR(s.x[y], 3.0, 1e-9);
}

TEST(Lp, InfeasibleDetected)
{
    // x <= 1 and x >= 2 cannot both hold.
    Problem p;
    int x = p.addVariable(0.0, kInf, 1.0);
    p.addConstraint({{x, 1.0}}, Relation::LessEqual, 1.0);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEqual, 2.0);
    Solution s = Solver().solve(p);
    EXPECT_EQ(s.status, Status::Infeasible);
}

TEST(Lp, InfeasibleEqualitySystem)
{
    Problem p;
    int x = p.addVariable(0.0, kInf, 0.0);
    int y = p.addVariable(0.0, kInf, 0.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 2.0);
    Solution s = Solver().solve(p);
    EXPECT_EQ(s.status, Status::Infeasible);
}

TEST(Lp, UnboundedDetected)
{
    // min -x with x unbounded above.
    Problem p;
    p.addVariable(0.0, kInf, -1.0);
    Solution s = Solver().solve(p);
    EXPECT_EQ(s.status, Status::Unbounded);
}

TEST(Lp, BoundedByRayConstraint)
{
    // min x - y s.t. x - y >= -1: the objective equals the
    // constrained quantity, so the optimum is exactly -1.
    Problem p;
    int x = p.addVariable(0.0, kInf, 1.0);
    int y = p.addVariable(0.0, kInf, -1.0);
    p.addConstraint({{x, 1.0}, {y, -1.0}}, Relation::GreaterEqual,
                    -1.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, -1.0, 1e-9);
}

TEST(Lp, UnboundedAlongRay)
{
    // min -x - y s.t. x - y <= 1: grow y (and x with it) without
    // bound along the ray x = y + 1.
    Problem p;
    int x = p.addVariable(0.0, kInf, -1.0);
    int y = p.addVariable(0.0, kInf, -1.0);
    p.addConstraint({{x, 1.0}, {y, -1.0}}, Relation::LessEqual, 1.0);
    Solution s = Solver().solve(p);
    EXPECT_EQ(s.status, Status::Unbounded);
}

TEST(Lp, UpperBoundsBecomeBinding)
{
    // max x + y with x, y in [0, 2] and x + y <= 3.
    Problem p;
    int x = p.addVariable(0.0, 2.0, -1.0);
    int y = p.addVariable(0.0, 2.0, -1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 3.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, -3.0, 1e-9);
}

TEST(Lp, ShiftedLowerBounds)
{
    // min x + y with x >= 1, y >= 2, x + y >= 5.
    Problem p;
    int x = p.addVariable(1.0, kInf, 1.0);
    int y = p.addVariable(2.0, kInf, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEqual, 5.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, 5.0, 1e-9);
    EXPECT_GE(s.x[x], 1.0 - 1e-9);
    EXPECT_GE(s.x[y], 2.0 - 1e-9);
}

TEST(Lp, NegativeRhsNormalization)
{
    // min x s.t. -x <= -3  (i.e. x >= 3).
    Problem p;
    int x = p.addVariable(0.0, kInf, 1.0);
    p.addConstraint({{x, -1.0}}, Relation::LessEqual, -3.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(Lp, RepeatedTermsAccumulate)
{
    // x + x <= 4 means 2x <= 4.
    Problem p;
    int x = p.addVariable(0.0, kInf, -1.0);
    p.addConstraint({{x, 1.0}, {x, 1.0}}, Relation::LessEqual, 4.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.x[x], 2.0, 1e-9);
}

TEST(Lp, DegenerateProblemStillSolves)
{
    // Several redundant constraints intersecting at the optimum.
    Problem p;
    int x = p.addVariable(0.0, kInf, -1.0);
    int y = p.addVariable(0.0, kInf, -1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 2.0);
    p.addConstraint({{x, 2.0}, {y, 2.0}}, Relation::LessEqual, 4.0);
    p.addConstraint({{x, 1.0}}, Relation::LessEqual, 2.0);
    p.addConstraint({{y, 1.0}}, Relation::LessEqual, 2.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(Lp, TransportationProblem)
{
    // Two supplies (10, 20), two demands (15, 15); costs
    // c11=1 c12=4 c21=2 c22=1. Optimum: x11=10, x21=5, x22=15,
    // cost 10 + 10 + 15 = 35.
    Problem p;
    int x11 = p.addVariable(0.0, kInf, 1.0);
    int x12 = p.addVariable(0.0, kInf, 4.0);
    int x21 = p.addVariable(0.0, kInf, 2.0);
    int x22 = p.addVariable(0.0, kInf, 1.0);
    p.addConstraint({{x11, 1.0}, {x12, 1.0}}, Relation::Equal, 10.0);
    p.addConstraint({{x21, 1.0}, {x22, 1.0}}, Relation::Equal, 20.0);
    p.addConstraint({{x11, 1.0}, {x21, 1.0}}, Relation::Equal, 15.0);
    p.addConstraint({{x12, 1.0}, {x22, 1.0}}, Relation::Equal, 15.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, 35.0, 1e-9);
}

TEST(Lp, SolutionSatisfiesConstraints)
{
    Problem p;
    int x = p.addVariable(0.0, 10.0, -2.0);
    int y = p.addVariable(0.0, 10.0, -3.0);
    int z = p.addVariable(0.0, 10.0, -1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}, {z, 1.0}},
                    Relation::LessEqual, 12.0);
    p.addConstraint({{x, 2.0}, {y, 1.0}}, Relation::LessEqual, 14.0);
    p.addConstraint({{y, 3.0}, {z, 1.0}}, Relation::LessEqual, 15.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_LE(s.x[x] + s.x[y] + s.x[z], 12.0 + 1e-6);
    EXPECT_LE(2 * s.x[x] + s.x[y], 14.0 + 1e-6);
    EXPECT_LE(3 * s.x[y] + s.x[z], 15.0 + 1e-6);
}

TEST(Lp, StatusNames)
{
    EXPECT_STREQ(toString(Status::Optimal), "optimal");
    EXPECT_STREQ(toString(Status::Infeasible), "infeasible");
    EXPECT_STREQ(toString(Status::Unbounded), "unbounded");
    EXPECT_STREQ(toString(Status::IterationLimit), "iteration-limit");
}

TEST(Lp, ProblemAccessors)
{
    Problem p;
    int x = p.addVariable(1.0, 5.0, 2.5, "x");
    EXPECT_EQ(p.numVariables(), 1);
    EXPECT_DOUBLE_EQ(p.lowerBound(x), 1.0);
    EXPECT_DOUBLE_EQ(p.upperBound(x), 5.0);
    EXPECT_DOUBLE_EQ(p.objective(x), 2.5);
    EXPECT_EQ(p.name(x), "x");
    p.addConstraint({{x, 1.0}}, Relation::LessEqual, 3.0);
    EXPECT_EQ(p.numConstraints(), 1);
}

/** Parameterized scaling check: chained constraints of growing size. */
class LpChain : public ::testing::TestWithParam<int>
{};

TEST_P(LpChain, SolvesChainedProblem)
{
    // min sum x_i s.t. x_i + x_{i+1} >= 1 for all i. Optimum is
    // picking alternate variables: ceil(n/2) * ... actually the LP
    // relaxation allows x_i = 0.5 everywhere: objective n/2.
    int n = GetParam();
    Problem p;
    std::vector<int> xs;
    for (int i = 0; i < n; ++i)
        xs.push_back(p.addVariable(0.0, kInf, 1.0));
    for (int i = 0; i + 1 < n; ++i)
        p.addConstraint({{xs[i], 1.0}, {xs[i + 1], 1.0}},
                        Relation::GreaterEqual, 1.0);
    Solution s = Solver().solve(p);
    ASSERT_TRUE(s.optimal());
    // LP optimum of the path-cover relaxation is floor(n/2) * 1 when
    // alternating 0/1 beats 0.5s; both give (n-1) pairs covered. The
    // optimum is ceil((n-1)/2) * ... verify objective is within the
    // known range [floor(n/2) * 0.5 * 2, n/2].
    EXPECT_LE(s.objective, n / 2.0 + 1e-6);
    EXPECT_GE(s.objective, (n - 1) / 2.0 - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LpChain,
                         ::testing::Values(2, 3, 5, 10, 25, 50));

} // anonymous namespace
} // namespace lp
} // namespace hilp
