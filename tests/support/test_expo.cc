/** @file Unit tests for the Prometheus text exposition layer. */

#include <gtest/gtest.h>

#include <string>

#include "support/expo.hh"
#include "support/metrics.hh"

namespace hilp {
namespace {

TEST(ExpoTest, SanitizeNameMapsIllegalCharacters)
{
    EXPECT_EQ(expo::promSanitizeName("hilpd.requests"),
              "hilpd_requests");
    EXPECT_EQ(expo::promSanitizeName("cp.solve_us"), "cp_solve_us");
    // A config label as it appears in registry names: parentheses,
    // commas, and '^' all leave the legal alphabet.
    EXPECT_EQ(expo::promSanitizeName("solve.(c4,g16,d2^16)"),
              "solve__c4_g16_d2_16_");
    // Colons are legal in metric names and survive.
    EXPECT_EQ(expo::promSanitizeName("a:b"), "a:b");
}

TEST(ExpoTest, SanitizeNameHandlesBadStarts)
{
    EXPECT_EQ(expo::promSanitizeName(""), "_");
    EXPECT_EQ(expo::promSanitizeName("9lives"), "_9lives");
    // '-' maps to '_', which is already a legal start: no prefix.
    EXPECT_EQ(expo::promSanitizeName("-x"), "_x");
}

TEST(ExpoTest, EscapeLabelQuotesAndBackslashes)
{
    EXPECT_EQ(expo::promEscapeLabel("plain"), "plain");
    EXPECT_EQ(expo::promEscapeLabel("a\"b"), "a\\\"b");
    EXPECT_EQ(expo::promEscapeLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(expo::promEscapeLabel("a\nb"), "a\\nb");
    // The config-name alphabet needs no escaping but must round-trip.
    EXPECT_EQ(expo::promEscapeLabel("(c4,g16,d2^16)"),
              "(c4,g16,d2^16)");
}

TEST(ExpoTest, PrometheusTextMatchesRegistry)
{
    metrics::counter("test.expo.counter").reset();
    metrics::counter("test.expo.counter").add(12);
    metrics::gauge("test.expo.gauge").set(3.5);
    metrics::histogram("test.expo.histogram").reset();
    metrics::histogram("test.expo.histogram").record(5);
    metrics::histogram("test.expo.histogram").record(900);

    std::string text = expo::prometheusText();
    EXPECT_NE(text.find("# TYPE test_expo_counter_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_expo_counter_total 12\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_expo_gauge 3.5\n"), std::string::npos);
    // Histogram: cumulative buckets, +Inf bucket == count, sum.
    EXPECT_NE(text.find("# TYPE test_expo_histogram histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_expo_histogram_bucket{le=\"7\"} 1\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("test_expo_histogram_bucket{le=\"1023\"} 2\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("test_expo_histogram_bucket{le=\"+Inf\"} 2\n"),
        std::string::npos);
    EXPECT_NE(text.find("test_expo_histogram_sum 905\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_expo_histogram_count 2\n"),
              std::string::npos);
    // Derived quantile gauges for the tail.
    EXPECT_NE(text.find("test_expo_histogram_quantile{q=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("test_expo_histogram_quantile{q=\"0.99\"}"),
              std::string::npos);
    // Build provenance rides every scrape.
    EXPECT_NE(text.find("hilp_build_info{version="),
              std::string::npos);

    metrics::counter("test.expo.counter").reset();
    metrics::histogram("test.expo.histogram").reset();
}

TEST(ExpoTest, ValidatorAcceptsOwnOutput)
{
    // Poison the registry with the worst names we produce and make
    // sure the rendered document still validates: this is the whole
    // point of the sanitize/escape layer.
    metrics::counter("test.expo.(c4,g16,d2^16)").add(1);
    metrics::histogram("test.expo.valid.histogram").record(77);
    std::string text = expo::prometheusText();
    EXPECT_EQ(expo::validateExposition(text), "");
    metrics::counter("test.expo.(c4,g16,d2^16)").reset();
    metrics::histogram("test.expo.valid.histogram").reset();
}

TEST(ExpoTest, ValidatorAcceptsHandWrittenDocument)
{
    std::string text =
        "# HELP up whether the target is up\n"
        "# TYPE up gauge\n"
        "up 1\n"
        "requests_total{method=\"get\",code=\"200\"} 1027 "
        "1395066363000\n"
        "pi 3.14\n"
        "inf_edge +Inf\n";
    EXPECT_EQ(expo::validateExposition(text), "");
}

TEST(ExpoTest, ValidatorRejectsMalformedDocuments)
{
    // No trailing newline.
    EXPECT_NE(expo::validateExposition("up 1"), "");
    // No samples at all.
    EXPECT_NE(expo::validateExposition("# TYPE up gauge\n"), "");
    // Illegal metric name.
    EXPECT_NE(expo::validateExposition("9up 1\n"), "");
    EXPECT_NE(expo::validateExposition("bad(name) 1\n"), "");
    // Unquoted or unterminated label values.
    EXPECT_NE(expo::validateExposition("up{job=x} 1\n"), "");
    EXPECT_NE(expo::validateExposition("up{job=\"x} 1\n"), "");
    // Bad escape inside a label value.
    EXPECT_NE(expo::validateExposition("up{job=\"a\\t\"} 1\n"), "");
    // Missing or unparseable value.
    EXPECT_NE(expo::validateExposition("up \n"), "");
    EXPECT_NE(expo::validateExposition("up one\n"), "");
    // Bad TYPE comment.
    EXPECT_NE(expo::validateExposition("# TYPE up banana\nup 1\n"),
              "");
    // Non-integer timestamp.
    EXPECT_NE(expo::validateExposition("up 1 12.5\n"), "");
}

} // anonymous namespace
} // namespace hilp
