/** @file Unit tests for the MultiAmdahl and Gables baselines. */

#include <gtest/gtest.h>

#include "baselines/gables.hh"
#include "baselines/multiamdahl.hh"
#include "hilp/engine.hh"
#include "hilp/showcase.hh"

namespace hilp {
namespace baselines {
namespace {

EngineOptions
exampleOptions()
{
    EngineOptions options;
    options.initialStepS = 1.0;
    options.horizonSteps = 64;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0;
    return options;
}

TEST(MultiAmdahl, Figure2Example)
{
    // Sequential execution with the best unit per phase:
    // m: 1 + 5 (DSA) + 1; n: 1 + 2 (DSA) + 1 -> 11 s, WLP 1.
    MaResult result = evaluateMultiAmdahl(makeTwoAppExample());
    ASSERT_TRUE(result.ok);
    EXPECT_DOUBLE_EQ(result.makespanS, 11.0);
    EXPECT_DOUBLE_EQ(result.averageWlp(), 1.0);
}

TEST(MultiAmdahl, ScheduleIsStrictlySequential)
{
    MaResult result = evaluateMultiAmdahl(makeTwoAppExample());
    ASSERT_TRUE(result.ok);
    ASSERT_EQ(result.schedule.phases.size(), 6u);
    EXPECT_DOUBLE_EQ(result.schedule.averageWlp(), 1.0);
    EXPECT_EQ(result.schedule.peakWlp(), 1);
    // Starts are cumulative: each phase begins where the previous
    // one ended.
    double now = 0.0;
    for (const ScheduledPhase &phase : result.schedule.phases) {
        EXPECT_DOUBLE_EQ(phase.startS, now);
        now += phase.durationS;
    }
}

TEST(MultiAmdahl, RespectsPowerBudgetPerPhase)
{
    // Under a 1.5 W budget neither the GPU (3 W) nor the DSA (2 W)
    // is usable: everything runs on the 1 W CPU -> 17 s.
    ProblemSpec spec = makeTwoAppExample();
    spec.powerBudgetW = 1.5;
    MaResult result = evaluateMultiAmdahl(spec);
    ASSERT_TRUE(result.ok);
    EXPECT_DOUBLE_EQ(result.makespanS, 17.0);
}

TEST(MultiAmdahl, InfeasibleWhenNothingFits)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.powerBudgetW = 0.5; // Below even the CPU's 1 W.
    MaResult result = evaluateMultiAmdahl(spec);
    EXPECT_FALSE(result.ok);
}

TEST(MultiAmdahl, HandlesDagAppsInTopologicalOrder)
{
    ProblemSpec spec = makeSdaProblem(SdaVariant::Baseline, 1);
    MaResult result = evaluateMultiAmdahl(spec);
    ASSERT_TRUE(result.ok);
    // Sum of best phase times: 3*4 (DS) + 2 (DF) + 2+3+2 (C on GPU)
    // + 1 (PP on GPU) = 22 s.
    EXPECT_DOUBLE_EQ(result.makespanS, 22.0);
}

TEST(Gables, TransformDropsDependenciesAndPower)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.powerBudgetW = 3.0;
    ProblemSpec transformed = gablesTransform(spec);
    EXPECT_DOUBLE_EQ(transformed.powerBudgetW, kUnlimited);
    for (const AppSpec &app : transformed.apps) {
        EXPECT_TRUE(app.independentPhases);
        EXPECT_TRUE(app.effectiveDeps().empty());
    }
    // The original spec is untouched.
    EXPECT_DOUBLE_EQ(spec.powerBudgetW, 3.0);
    EXPECT_FALSE(spec.apps[0].independentPhases);
}

TEST(Gables, Figure2Example)
{
    // The paper's Gables packing reaches 5 s with average WLP 2.4.
    EvalResult result =
        evaluateGables(makeTwoAppExample(), exampleOptions());
    ASSERT_TRUE(result.ok);
    EXPECT_DOUBLE_EQ(result.makespanS, 5.0);
    EXPECT_NEAR(result.averageWlp, 2.4, 1e-9);
}

TEST(Gables, IgnoresPowerBudget)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.powerBudgetW = 3.0;
    EvalResult result = evaluateGables(spec, exampleOptions());
    ASSERT_TRUE(result.ok);
    EXPECT_DOUBLE_EQ(result.makespanS, 5.0); // same as unconstrained.
}

TEST(Baselines, OrderingMaGreaterThanHilpGreaterThanGables)
{
    // The WLP extremes bracket HILP (Figure 2: 11 / 7 / 5 s).
    ProblemSpec spec = makeTwoAppExample();
    MaResult ma = evaluateMultiAmdahl(spec);
    EvalResult hilp = evaluate(spec, exampleOptions());
    EvalResult gables = evaluateGables(spec, exampleOptions());
    ASSERT_TRUE(ma.ok && hilp.ok && gables.ok);
    EXPECT_GT(ma.makespanS, hilp.makespanS);
    EXPECT_GT(hilp.makespanS, gables.makespanS);
    EXPECT_LT(ma.averageWlp(), hilp.averageWlp);
    EXPECT_LT(hilp.averageWlp, gables.averageWlp);
}

} // anonymous namespace
} // namespace baselines
} // namespace hilp
