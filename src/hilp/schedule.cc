#include "schedule.hh"

#include <algorithm>
#include <cmath>

#include "problem.hh"
#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {

double
Schedule::makespanS() const
{
    double end = 0.0;
    for (const ScheduledPhase &phase : phases)
        end = std::max(end, phase.startS + phase.durationS);
    return end;
}

double
Schedule::averageWlp() const
{
    // Average WLP = total busy phase-time / measure of the union of
    // activity intervals (equivalent to the paper's per-step mean).
    struct Event
    {
        double time;
        int delta;
    };
    std::vector<Event> events;
    double busy = 0.0;
    for (const ScheduledPhase &phase : phases) {
        if (phase.durationS <= 0.0)
            continue;
        busy += phase.durationS;
        events.push_back({phase.startS, +1});
        events.push_back({phase.startS + phase.durationS, -1});
    }
    if (events.empty())
        return 0.0;
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.time < b.time;
              });
    double active_measure = 0.0;
    int depth = 0;
    double open_since = 0.0;
    for (const Event &event : events) {
        if (depth > 0)
            active_measure += event.time - open_since;
        depth += event.delta;
        open_since = event.time;
    }
    hilp_assert(depth == 0);
    if (active_measure <= 0.0)
        return 0.0;
    return busy / active_measure;
}

int
Schedule::peakWlp() const
{
    struct Event
    {
        double time;
        int delta;
    };
    std::vector<Event> events;
    for (const ScheduledPhase &phase : phases) {
        if (phase.durationS <= 0.0)
            continue;
        events.push_back({phase.startS, +1});
        events.push_back({phase.startS + phase.durationS, -1});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.delta < b.delta; // close before open
              });
    int depth = 0;
    int peak = 0;
    for (const Event &event : events) {
        depth += event.delta;
        peak = std::max(peak, depth);
    }
    return peak;
}

namespace {

/** Makespan in steps of a discrete schedule. */
cp::Time
makespanSteps(const Schedule &schedule)
{
    cp::Time end = 0;
    for (const ScheduledPhase &phase : schedule.phases)
        end = std::max(end, phase.startStep + phase.durationSteps);
    return end;
}

template <typename Value, typename Getter>
std::vector<Value>
traceOf(const Schedule &schedule, Getter getter)
{
    hilp_assert(schedule.stepS > 0.0);
    std::vector<Value> trace(makespanSteps(schedule), Value{});
    for (const ScheduledPhase &phase : schedule.phases) {
        for (cp::Time s = phase.startStep;
             s < phase.startStep + phase.durationSteps; ++s) {
            trace[s] += getter(phase);
        }
    }
    return trace;
}

/** Label for the i-th phase in Gantt charts. */
char
phaseLetter(size_t i)
{
    if (i < 26)
        return static_cast<char>('A' + i);
    if (i < 52)
        return static_cast<char>('a' + (i - 26));
    return static_cast<char>('0' + i % 10);
}

} // anonymous namespace

std::vector<double>
Schedule::powerTrace() const
{
    return traceOf<double>(*this, [](const ScheduledPhase &p) {
        return p.powerW;
    });
}

std::vector<double>
Schedule::bwTrace() const
{
    return traceOf<double>(*this, [](const ScheduledPhase &p) {
        return p.bwGBs;
    });
}

std::vector<int>
Schedule::wlpTrace() const
{
    return traceOf<int>(*this, [](const ScheduledPhase &) {
        return 1;
    });
}

std::string
Schedule::gantt(int width) const
{
    hilp_assert(width > 10);
    double makespan = makespanS();
    if (makespan <= 0.0 || phases.empty())
        return "(empty schedule)\n";
    double scale = static_cast<double>(width) / makespan;

    // Order phases deterministically for labelling.
    std::vector<size_t> order(phases.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
        if (phases[a].startS != phases[b].startS)
            return phases[a].startS < phases[b].startS;
        return phases[a].name < phases[b].name;
    });
    std::vector<char> letter(phases.size());
    for (size_t i = 0; i < order.size(); ++i)
        letter[order[i]] = phaseLetter(i);

    // Rows: devices keep one lane each; CPU-pool phases are packed
    // greedily into as many lanes as their overlap requires.
    struct Row
    {
        std::string label;
        std::string cells;
        double freeFrom = 0.0;
    };
    std::vector<Row> device_rows;
    std::vector<Row> cpu_rows;
    for (const std::string &device : deviceNames)
        device_rows.push_back({device, std::string(width, '.'), 0.0});

    auto paint = [&](Row &row, size_t idx) {
        const ScheduledPhase &phase = phases[idx];
        int begin = static_cast<int>(std::floor(phase.startS * scale));
        int end = static_cast<int>(
            std::ceil((phase.startS + phase.durationS) * scale));
        begin = std::clamp(begin, 0, width - 1);
        end = std::clamp(end, begin + 1, width);
        for (int c = begin; c < end; ++c)
            row.cells[c] = letter[idx];
        row.freeFrom = phase.startS + phase.durationS;
    };

    for (size_t idx : order) {
        const ScheduledPhase &phase = phases[idx];
        if (phase.durationS <= 0.0)
            continue;
        if (phase.device == kCpuPool) {
            Row *target = nullptr;
            for (Row &row : cpu_rows) {
                if (row.freeFrom <= phase.startS + 1e-9) {
                    target = &row;
                    break;
                }
            }
            if (!target) {
                cpu_rows.push_back(
                    {format("CPU#%zu", cpu_rows.size()),
                     std::string(width, '.'), 0.0});
                target = &cpu_rows.back();
            }
            paint(*target, idx);
        } else {
            while (static_cast<int>(device_rows.size()) <=
                   phase.device) {
                size_t d = device_rows.size();
                std::string label = d < deviceNames.size()
                    ? deviceNames[d] : format("dev%zu", d);
                device_rows.push_back(
                    {label, std::string(width, '.'), 0.0});
            }
            paint(device_rows[phase.device], idx);
        }
    }

    size_t label_width = 0;
    for (const Row &row : cpu_rows)
        label_width = std::max(label_width, row.label.size());
    for (const Row &row : device_rows)
        label_width = std::max(label_width, row.label.size());

    std::string out;
    auto emit = [&](const Row &row) {
        out += row.label;
        out += std::string(label_width - row.label.size(), ' ');
        out += " |" + row.cells + "|\n";
    };
    for (const Row &row : cpu_rows)
        emit(row);
    for (const Row &row : device_rows)
        emit(row);
    out += format("%*s  0%*s%.1fs\n", static_cast<int>(label_width),
                  "", width - 1, "", makespan);
    for (size_t idx : order) {
        const ScheduledPhase &phase = phases[idx];
        out += format("  %c: %-18s %-10s [%8.2f, %8.2f)\n",
                      letter[idx], phase.name.c_str(),
                      phase.unitLabel.c_str(), phase.startS,
                      phase.startS + phase.durationS);
    }
    return out;
}

std::vector<Schedule::Utilization>
Schedule::utilization() const
{
    double makespan = makespanS();
    std::vector<Utilization> rows;
    // One row per device, in device-id order.
    size_t num_devices = deviceNames.size();
    for (const ScheduledPhase &phase : phases)
        if (phase.device != kCpuPool)
            num_devices = std::max(num_devices,
                                   static_cast<size_t>(
                                       phase.device + 1));
    rows.resize(num_devices + 1);
    for (size_t d = 0; d < num_devices; ++d) {
        rows[d].unit = d < deviceNames.size()
            ? deviceNames[d] : format("dev%zu", d);
    }
    rows[num_devices].unit = "CPU pool";
    for (const ScheduledPhase &phase : phases) {
        if (phase.device == kCpuPool) {
            rows[num_devices].busyS +=
                phase.durationS * std::max(1.0, phase.cpuCores);
        } else {
            rows[phase.device].busyS += phase.durationS;
        }
    }
    if (makespan > 0.0) {
        for (size_t d = 0; d < num_devices; ++d)
            rows[d].share = rows[d].busyS / makespan;
        double pool = std::max(1.0, cpuCores);
        rows[num_devices].share =
            rows[num_devices].busyS / (pool * makespan);
    }
    return rows;
}

std::string
Schedule::describe() const
{
    std::vector<size_t> order(phases.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
        if (phases[a].startS != phases[b].startS)
            return phases[a].startS < phases[b].startS;
        return phases[a].name < phases[b].name;
    });
    std::string out;
    for (size_t idx : order) {
        const ScheduledPhase &phase = phases[idx];
        out += format("%-18s on %-10s [%9.2f, %9.2f) s\n",
                      phase.name.c_str(), phase.unitLabel.c_str(),
                      phase.startS, phase.startS + phase.durationS);
    }
    return out;
}

} // namespace hilp
