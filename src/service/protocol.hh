/**
 * @file
 * The hilpd wire protocol: newline-delimited JSON over a stream
 * socket (see support/net.hh).
 *
 * Requests are one JSON object per line:
 *
 *   {"op": "eval",  "configs": ["(c4,g16,d2^16)"], "workload":
 *    {"variant": "Default", "copies": 1}, "model": "HILP",
 *    "constraints": {...}, "options": {...}, "priority": 0}
 *   {"op": "sweep", "configs": [...], ...}          same shape
 *   {"op": "stats"}
 *   {"op": "shutdown"}
 *
 * Distributed-sweep operations (served only when a coordinator is
 * registered with the daemon; see dse/distribute.hh):
 *
 *   {"op": "lease", "worker": "w1"}
 *   {"op": "submit", "worker": "w1", "lease": 7,
 *    "records": [{...point record...}], "complete": false}
 *   {"op": "heartbeat", "worker": "w1", "lease": 7}
 *   {"op": "drain"}
 *
 * Configurations travel as the paper's labels ("(c4,g16,d2^16)") and
 * are reconstructed server-side with arch::parseSocName against the
 * request's DSA advantage and the paper's DSA priority order - the
 * label is the complete identity of a design-space point.
 *
 * Responses stream back per line:
 *
 *   {"type": "point", ...}   one per completed point, in completion
 *                            order: the sweep-checkpoint record
 *                            format (dse::pointRecordJson) plus the
 *                            "type" tag, which parsePointRecord
 *                            ignores - so a captured stream is a
 *                            valid --resume checkpoint file.
 *   {"type": "stats", "stats": {...}}  the stats response payload.
 *   {"type": "lease", "lease": 7, "unit": 3, "expires_s": 30.0,
 *    "configs": [...], "params": {...}}  a granted work unit; params
 *                            is the sweep-request body (workload,
 *                            model, constraints, options) shared by
 *                            every unit of the sweep.
 *   {"type": "wait"}         no unit available right now; poll again.
 *   {"type": "complete"}     the coordinator is retired: exit.
 *   {"type": "ack", "ok": true, "accepted": N, "duplicates": N}
 *                            submit/heartbeat acknowledgment.
 *   {"type": "progress", "progress": {...}}  the drain payload.
 *   {"type": "done", "ok": true|false, "error": "...", "points": N,
 *    "trace_id": T}          exactly one per request, last. T is the
 *                            request id assigned at admission; the
 *                            same id rides every streamed point's
 *                            "trace_id" field and the daemon's spans
 *                            and flight-recorder entries.
 *
 * A malformed request gets a done/ok=false line and the connection
 * stays usable; a rejected request (admission control) reports the
 * rejection reason the same way.
 */

#ifndef HILP_SERVICE_PROTOCOL_HH
#define HILP_SERVICE_PROTOCOL_HH

#include <string>
#include <vector>

#include "arch/soc.hh"
#include "dse/explore.hh"
#include "support/json.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace service {
namespace protocol {

/** Request operations. */
enum class Op { Eval, Sweep, Stats, Shutdown, Lease, Submit,
                Heartbeat, Drain };

const char *toString(Op op);

/** A decoded request line. */
struct Request
{
    Op op = Op::Stats;
    /** Configuration labels; exactly one for Eval. */
    std::vector<std::string> configNames;
    workload::Variant variant = workload::Variant::Default;
    int copies = 1;
    double dsaAdvantage = 4.0;
    arch::Constraints constraints;
    dse::ModelKind kind = dse::ModelKind::Hilp;
    /**
     * Exploration options. Only value fields travel (engine, solver,
     * build, threads, reuse, failFast); the pointer members (memo,
     * checkpoint, injectFault) are the server's.
     */
    dse::DseOptions options;
    int priority = 0;

    // Distributed-sweep fields (Lease/Submit/Heartbeat only).
    /** Worker identity, for lease bookkeeping and logs. */
    std::string worker;
    /** The lease the submit/heartbeat refers to. */
    uint64_t leaseId = 0;
    /** Submit: checkpoint-format record objects to merge. */
    std::vector<Json> records;
    /** Submit: the unit is fully evaluated; complete the lease. */
    bool complete = false;
};

/** Encode a request as one wire line (no trailing newline). */
std::string encodeRequest(const Request &request);

/**
 * Decode one request line. Returns false and fills *error on
 * malformed input (bad JSON, unknown op/model/variant, invalid
 * config label, out-of-range field).
 */
bool parseRequest(const std::string &line, Request *out,
                  std::string *error);

/**
 * Reconstruct the request's SocConfigs from its labels, in request
 * order. Returns false and fills *error on the first bad label.
 */
bool resolveConfigs(const Request &request,
                    std::vector<arch::SocConfig> *out,
                    std::string *error);

// JSON round trips for the option payloads. Parsers accept partial
// objects - absent fields keep their defaults - so old clients can
// talk to new servers and vice versa.

Json engineOptionsJson(const EngineOptions &options);
bool parseEngineOptions(const Json &json, EngineOptions *out,
                        std::string *error);

Json constraintsJson(const arch::Constraints &constraints);
bool parseConstraints(const Json &json, arch::Constraints *out,
                      std::string *error);

/** Model kind by wire name ("MA", "HILP", "Gables"). */
bool parseModelKind(const std::string &name, dse::ModelKind *out);

/** Workload variant by wire name ("Rodinia", "Default", "Optimized"). */
bool parseVariant(const std::string &name, workload::Variant *out);

// Response lines.

/**
 * The terminal line of every request. A nonzero trace_id is the
 * request id the daemon assigned at admission; clients log it to
 * join their request against the daemon's spans, flight-recorder
 * entries, and slow-request dumps.
 */
std::string encodeDone(bool ok, const std::string &error,
                       size_t points = 0, uint64_t trace_id = 0);

/** The stats response payload line. */
std::string encodeStats(Json stats);

// Distributed-sweep payloads.

/**
 * The shared sweep-request body of a distributed sweep (workload,
 * model, constraints, options, advantage - everything but the
 * configs): what a lease grant embeds as "params" so a worker can
 * rebuild a full sweep request from the grant alone.
 */
Json sweepParamsJson(const Request &request);

/**
 * Inverse of sweepParamsJson: fill *out's shared fields from a
 * grant's params object (configNames stays empty - the grant's
 * "configs" array carries the unit).
 */
bool parseSweepParams(const Json &json, Request *out,
                      std::string *error);

/** A granted lease line: the unit plus the shared params object. */
std::string encodeLeaseGrant(uint64_t lease_id, size_t unit,
                             double expires_s,
                             const std::vector<std::string> &configs,
                             const Json &params);

/** The "poll again" lease response. */
std::string encodeLeaseWait();

/** The "coordinator retired, exit" lease response. */
std::string encodeLeaseComplete();

/** Submit/heartbeat acknowledgment. */
std::string encodeAck(bool ok, size_t accepted, size_t duplicates);

/** The drain response payload line. */
std::string encodeProgress(Json progress);


} // namespace protocol
} // namespace service
} // namespace hilp

#endif // HILP_SERVICE_PROTOCOL_HH
