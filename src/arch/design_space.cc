#include "design_space.hh"

#include "support/logging.hh"

namespace hilp {
namespace arch {

std::vector<SocConfig>
enumerateDesignSpace(const DesignSpace &space,
                     const std::vector<int> &dsa_priority)
{
    hilp_assert(space.maxDsas <= static_cast<int>(dsa_priority.size()));
    std::vector<SocConfig> configs;
    for (int cpus : space.cpuOptions) {
        for (int sms : space.gpuOptions) {
            for (int num_dsas = 0; num_dsas <= space.maxDsas;
                 ++num_dsas) {
                if (num_dsas == 0) {
                    SocConfig config;
                    config.cpuCores = cpus;
                    config.gpuSms = sms;
                    config.dsaAdvantage = space.dsaAdvantage;
                    configs.push_back(config);
                    continue;
                }
                for (int pes : space.peOptions) {
                    SocConfig config;
                    config.cpuCores = cpus;
                    config.gpuSms = sms;
                    config.dsaAdvantage = space.dsaAdvantage;
                    for (int d = 0; d < num_dsas; ++d)
                        config.dsas.push_back({pes, dsa_priority[d]});
                    configs.push_back(config);
                }
            }
        }
    }
    return configs;
}

} // namespace arch
} // namespace hilp
