/** @file Tests for initiation intervals (start-to-start lags, the
 * Section VII extension) across the solver stack. */

#include <gtest/gtest.h>

#include "cp/bounds.hh"
#include "cp/list_scheduler.hh"
#include "cp/model.hh"
#include "cp/solver.hh"

namespace hilp {
namespace cp {
namespace {

/** Two tasks on separate groups with a start lag between them. */
Model
laggedPair(Time lag)
{
    Model m;
    int g1 = m.addGroup("A");
    int g2 = m.addGroup("B");
    Task a;
    a.modes.push_back({g1, 6, {}});
    m.addTask(a);
    Task b;
    b.modes.push_back({g2, 2, {}});
    m.addTask(b);
    m.addStartLag(0, 1, lag);
    m.setHorizon(32);
    return m;
}

TEST(StartLags, ModelBookkeeping)
{
    Model m = laggedPair(3);
    EXPECT_TRUE(m.hasStartLags());
    ASSERT_EQ(m.lagSuccessors(0).size(), 1u);
    EXPECT_EQ(m.lagSuccessors(0)[0].other, 1);
    EXPECT_EQ(m.lagSuccessors(0)[0].lag, 3);
    ASSERT_EQ(m.lagPredecessors(1).size(), 1u);
    EXPECT_EQ(m.lagPredecessors(1)[0].other, 0);
    EXPECT_TRUE(m.predecessors(1).empty()); // not a finish-to-start.
    EXPECT_EQ(m.validate(), "");
}

TEST(StartLags, CheckScheduleEnforcesLag)
{
    Model m = laggedPair(3);
    ScheduleVec ok_schedule;
    ok_schedule.tasks = {{0, 0}, {0, 3}};
    EXPECT_EQ(checkSchedule(m, ok_schedule), "");
    ScheduleVec bad;
    bad.tasks = {{0, 0}, {0, 2}};
    EXPECT_NE(checkSchedule(m, bad).find("start lag"),
              std::string::npos);
}

TEST(StartLags, LagAllowsOverlapUnlikePrecedence)
{
    // With a lag of 3 the successor runs inside the predecessor's
    // execution window - impossible under a precedence edge.
    Model m = laggedPair(3);
    Result r = Solver({.targetGap = 0.0}).solve(m);
    ASSERT_TRUE(r.hasSchedule());
    EXPECT_EQ(r.status, SolveStatus::Optimal);
    // a: [0,6); b: [3,5) -> makespan 6.
    EXPECT_EQ(r.makespan, 6);
}

TEST(StartLags, LongLagStretchesTheSchedule)
{
    Model m = laggedPair(10);
    Result r = Solver({.targetGap = 0.0}).solve(m);
    ASSERT_TRUE(r.hasSchedule());
    EXPECT_EQ(r.makespan, 12); // b starts at 10, ends at 12.
}

TEST(StartLags, ZeroLagAllowsSimultaneousStart)
{
    Model m = laggedPair(0);
    Result r = Solver({.targetGap = 0.0}).solve(m);
    ASSERT_TRUE(r.hasSchedule());
    EXPECT_EQ(r.makespan, 6);
}

TEST(StartLags, CriticalPathSeesLags)
{
    Model m = laggedPair(10);
    CriticalPathData cp = criticalPathData(m);
    EXPECT_EQ(cp.head[1], 10);
    EXPECT_EQ(cp.tail[0], 12); // lag 10 + duration 2 of successor.
    LowerBounds lb = computeLowerBounds(m, false);
    EXPECT_EQ(lb.criticalPath, 12);
}

TEST(StartLags, LpBoundSeesLags)
{
    Model m = laggedPair(10);
    LowerBounds lb = computeLowerBounds(m, true);
    EXPECT_GE(lb.lpRelaxation, 12);
}

TEST(StartLags, ListSchedulerHonoursLags)
{
    Model m = laggedPair(4);
    ListResult r = bestGreedy(m);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(checkSchedule(m, r.schedule), "");
    EXPECT_GE(r.schedule.tasks[1].start,
              r.schedule.tasks[0].start + 4);
}

TEST(StartLags, LagCycleIsRejected)
{
    Model m;
    for (int i = 0; i < 2; ++i) {
        Task t;
        t.modes.push_back({kNoGroup, 1, {}});
        m.addTask(t);
    }
    m.addStartLag(0, 1, 1);
    m.addStartLag(1, 0, 1);
    m.setHorizon(10);
    EXPECT_NE(m.validate().find("cycle"), std::string::npos);
}

TEST(StartLags, PipelinedChainWithInitiationInterval)
{
    // Three pipeline stages; each instance's stages are chained and
    // consecutive instances are separated by an initiation interval
    // of 2 on their first stages. Classic software-pipelining shape.
    Model m;
    int stage0 = m.addGroup("S0");
    int stage1 = m.addGroup("S1");
    std::vector<int> first_stage;
    for (int instance = 0; instance < 3; ++instance) {
        Task a;
        a.modes.push_back({stage0, 2, {}});
        int ai = m.addTask(a);
        Task b;
        b.modes.push_back({stage1, 2, {}});
        int bi = m.addTask(b);
        m.addPrecedence(ai, bi);
        if (!first_stage.empty())
            m.addStartLag(first_stage.back(), ai, 2);
        first_stage.push_back(ai);
    }
    m.setHorizon(40);
    Result r = Solver({.targetGap = 0.0}).solve(m);
    ASSERT_TRUE(r.hasSchedule());
    // Perfect pipelining: starts at 0/2/4, last finishes at 8.
    EXPECT_EQ(r.makespan, 8);
    EXPECT_EQ(r.status, SolveStatus::Optimal);
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
