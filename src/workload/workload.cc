#include "workload.hh"

namespace hilp {
namespace workload {

int
Workload::numPhases() const
{
    int count = 0;
    for (const Application &app : apps)
        count += static_cast<int>(app.phases.size());
    return count;
}

double
sequentialCpuTimeS(const Workload &workload)
{
    double total = 0.0;
    for (const Application &app : workload.apps)
        for (const PhaseProfile &phase : app.phases)
            total += phase.cpuTime1;
    return total;
}

} // namespace workload
} // namespace hilp
