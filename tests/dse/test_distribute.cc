/**
 * @file
 * Unit tests for the distributed-sweep coordinator (dse/distribute.hh):
 * lease grant/expiry/re-issue, heartbeat keep-alive, idempotent
 * merging of duplicate submits, and the zombie-worker paths (stale
 * submits after a lease was re-issued).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "dse/checkpoint.hh"
#include "dse/distribute.hh"
#include "support/metrics.hh"

namespace hilp {
namespace dse {
namespace {

/**
 * n configs with distinct cpuCores: n similarity chains, so each
 * config is its own work unit.
 */
std::vector<arch::SocConfig>
unitPerConfig(int n)
{
    std::vector<arch::SocConfig> configs;
    for (int i = 0; i < n; ++i) {
        arch::SocConfig config;
        config.cpuCores = 1 + i;
        config.gpuSms = 4;
        configs.push_back(config);
    }
    return configs;
}

/** A checkpoint-format record line for one evaluated config. */
std::string
recordFor(const arch::SocConfig &config, uint64_t fingerprint,
          ModelKind kind = ModelKind::Hilp)
{
    DsePoint point;
    point.config = config;
    point.ok = true;
    point.makespanS = 1.5;
    point.speedup = 7.0;
    point.gap = 0.01;
    point.averageWlp = 2.0;
    point.fingerprint = fingerprint;
    return pointRecordJson(
               checkpointKey(fingerprint, config.name(), kind), kind,
               point)
        .dump();
}

void
sleepS(double seconds)
{
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
}

TEST(Coordinator, GrantsEachUnitOnceThenWaits)
{
    Coordinator coordinator(unitPerConfig(2), ModelKind::Hilp);
    LeaseGrant first;
    LeaseGrant second;
    EXPECT_EQ(coordinator.lease("w1", &first),
              LeaseOutcome::Granted);
    EXPECT_EQ(coordinator.lease("w2", &second),
              LeaseOutcome::Granted);
    EXPECT_NE(first.leaseId, second.leaseId);
    EXPECT_NE(first.unit, second.unit);
    ASSERT_EQ(first.configNames.size(), 1u);

    // Everything is leased: the next asker polls.
    LeaseGrant third;
    EXPECT_EQ(coordinator.lease("w3", &third), LeaseOutcome::Wait);
    EXPECT_FALSE(coordinator.finished());
}

TEST(Coordinator, ExpiredLeaseIsReissued)
{
    const int64_t reissued_before =
        metrics::counter("dse.lease.reissued").value();

    CoordinatorOptions options;
    options.leaseTimeoutS = 0.05;
    Coordinator coordinator(unitPerConfig(1), ModelKind::Hilp,
                            options);
    LeaseGrant grant;
    ASSERT_EQ(coordinator.lease("w1", &grant),
              LeaseOutcome::Granted);

    // Unrefreshed past the timeout: the unit goes back to the queue
    // and the next asker gets it under a fresh lease.
    sleepS(0.12);
    LeaseGrant regrant;
    ASSERT_EQ(coordinator.lease("w2", &regrant),
              LeaseOutcome::Granted);
    EXPECT_EQ(regrant.unit, grant.unit);
    EXPECT_NE(regrant.leaseId, grant.leaseId);
    EXPECT_EQ(coordinator.progress().reissued, 1u);
    EXPECT_EQ(metrics::counter("dse.lease.reissued").value(),
              reissued_before + 1);

    // The original lease is gone: its heartbeat fails.
    EXPECT_FALSE(coordinator.heartbeat("w1", grant.leaseId));
    EXPECT_TRUE(coordinator.heartbeat("w2", regrant.leaseId));
}

TEST(Coordinator, HeartbeatKeepsALeaseAlive)
{
    CoordinatorOptions options;
    options.leaseTimeoutS = 0.1;
    Coordinator coordinator(unitPerConfig(1), ModelKind::Hilp,
                            options);
    LeaseGrant grant;
    ASSERT_EQ(coordinator.lease("w1", &grant),
              LeaseOutcome::Granted);

    // Heartbeat at half the window for several windows' worth of
    // wall clock: the lease must survive every reap.
    for (int i = 0; i < 6; ++i) {
        sleepS(0.05);
        EXPECT_TRUE(coordinator.heartbeat("w1", grant.leaseId));
        EXPECT_EQ(coordinator.reapExpired(), 0u);
    }

    // Stop heartbeating: the next reap past the window collects it.
    sleepS(0.25);
    EXPECT_EQ(coordinator.reapExpired(), 1u);
    EXPECT_FALSE(coordinator.heartbeat("w1", grant.leaseId));
}

TEST(Coordinator, DuplicateSubmitsMergeOnce)
{
    auto configs = unitPerConfig(1);
    Coordinator coordinator(configs, ModelKind::Hilp);
    LeaseGrant grant;
    ASSERT_EQ(coordinator.lease("w1", &grant),
              LeaseOutcome::Granted);

    const std::string record = recordFor(configs[0], 0x1234);
    std::string error;
    bool duplicate = false;
    EXPECT_TRUE(coordinator.submitRecord("w1", grant.leaseId, record,
                                         &error, &duplicate));
    EXPECT_FALSE(duplicate);
    // The same record again (a resubmit after a lost ack).
    EXPECT_TRUE(coordinator.submitRecord("w1", grant.leaseId, record,
                                         &error, &duplicate));
    EXPECT_TRUE(duplicate);

    CoordinatorProgress progress = coordinator.progress();
    EXPECT_EQ(progress.pointsMerged, 1u);
    EXPECT_EQ(progress.duplicates, 1u);

    EXPECT_TRUE(coordinator.completeLease("w1", grant.leaseId));
    EXPECT_TRUE(coordinator.finished());

    auto points = coordinator.takePoints();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].ok);
    EXPECT_DOUBLE_EQ(points[0].speedup, 7.0);
    // Structural fields are restored from the local config.
    EXPECT_EQ(points[0].config.name(), configs[0].name());
    EXPECT_DOUBLE_EQ(points[0].areaMm2, configs[0].areaMm2());
}

TEST(Coordinator, MalformedSubmitIsRejectedNotMerged)
{
    Coordinator coordinator(unitPerConfig(1), ModelKind::Hilp);
    LeaseGrant grant;
    ASSERT_EQ(coordinator.lease("w1", &grant),
              LeaseOutcome::Granted);
    std::string error;
    EXPECT_FALSE(coordinator.submitRecord(
        "w1", grant.leaseId, "{not json", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(coordinator.progress().pointsMerged, 0u);
}

TEST(Coordinator, ZombieWorkerSubmitsStillMergeIdempotently)
{
    CoordinatorOptions options;
    options.leaseTimeoutS = 0.05;
    auto configs = unitPerConfig(1);
    Coordinator coordinator(configs, ModelKind::Hilp, options);

    LeaseGrant zombie;
    ASSERT_EQ(coordinator.lease("w1", &zombie),
              LeaseOutcome::Granted);
    sleepS(0.12);
    LeaseGrant replacement;
    ASSERT_EQ(coordinator.lease("w2", &replacement),
              LeaseOutcome::Granted);

    // The zombie finishes first and streams under its stale lease:
    // the record merges (first seen wins); the replacement's copy of
    // the same point is then the duplicate.
    const std::string record = recordFor(configs[0], 0x77);
    std::string error;
    bool duplicate = false;
    EXPECT_TRUE(coordinator.submitRecord("w1", zombie.leaseId, record,
                                         &error, &duplicate));
    EXPECT_FALSE(duplicate);
    EXPECT_TRUE(coordinator.submitRecord(
        "w2", replacement.leaseId, record, &error, &duplicate));
    EXPECT_TRUE(duplicate);

    // The zombie cannot complete the unit (its lease is gone); the
    // replacement can.
    EXPECT_FALSE(coordinator.completeLease("w1", zombie.leaseId));
    EXPECT_FALSE(coordinator.finished());
    EXPECT_TRUE(
        coordinator.completeLease("w2", replacement.leaseId));
    EXPECT_TRUE(coordinator.finished());
    EXPECT_EQ(coordinator.progress().pointsMerged, 1u);
}

TEST(Coordinator, LedgerRecordsFirstSeenSubmits)
{
    // The merged ledger doubles as a --resume checkpoint: only
    // first-seen records land in it.
    std::string path = ::testing::TempDir() + "/coordinator_ledger";
    {
        SweepCheckpoint ledger;
        std::string error;
        ASSERT_TRUE(ledger.open(path, false, &error)) << error;
        CoordinatorOptions options;
        options.ledger = &ledger;
        auto configs = unitPerConfig(1);
        Coordinator coordinator(configs, ModelKind::Hilp, options);
        LeaseGrant grant;
        ASSERT_EQ(coordinator.lease("w1", &grant),
                  LeaseOutcome::Granted);
        const std::string record = recordFor(configs[0], 0x99);
        EXPECT_TRUE(coordinator.submitRecord("w1", grant.leaseId,
                                             record, nullptr));
        EXPECT_TRUE(coordinator.submitRecord("w1", grant.leaseId,
                                             record, nullptr));
    }
    SweepCheckpoint resumed;
    std::string error;
    ASSERT_TRUE(resumed.open(path, true, &error)) << error;
    EXPECT_EQ(resumed.loaded(), 1u);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace dse
} // namespace hilp
