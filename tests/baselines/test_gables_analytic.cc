/** @file Tests for the closed-form (fractional roofline) Gables. */

#include <gtest/gtest.h>

#include "baselines/gables.hh"
#include "hilp/builder.hh"
#include "hilp/showcase.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace baselines {
namespace {

TEST(GablesAnalytic, PositiveOnTheExample)
{
    double analytic = evaluateGablesAnalyticS(makeTwoAppExample());
    EXPECT_GT(analytic, 0.0);
    EXPECT_LT(analytic, 17.0); // strictly better than naive CPU.
}

TEST(GablesAnalytic, AtLeastTheLongestMandatoryPhase)
{
    // A fractional roofline still cannot beat the single longest
    // phase executed on its fastest unit.
    ProblemSpec spec = makeTwoAppExample();
    double analytic = evaluateGablesAnalyticS(spec);
    double longest_min = 0.0;
    for (const AppSpec &app : spec.apps) {
        for (const PhaseSpec &phase : app.phases) {
            double best = 1e300;
            for (const UnitOption &option : phase.options)
                best = std::min(best, option.timeS);
            longest_min = std::max(longest_min, best);
        }
    }
    EXPECT_GE(analytic, longest_min - 1e-6);
}

TEST(GablesAnalytic, CpuPoolLoadIsRespected)
{
    // In the example the four sequential phases are CPU-pinned on a
    // single core: the roofline is at least 4 s.
    double analytic = evaluateGablesAnalyticS(makeTwoAppExample());
    EXPECT_GE(analytic, 4.0 - 1e-6);
}

TEST(GablesAnalytic, MoreCpusLowerTheRoofline)
{
    auto wl = workload::makeWorkload(workload::Variant::Optimized);
    arch::SocConfig one;
    one.cpuCores = 1;
    one.gpuSms = 64;
    arch::SocConfig four;
    four.cpuCores = 4;
    four.gpuSms = 64;
    double roof_one = evaluateGablesAnalyticS(
        buildProblem(wl, one, arch::Constraints{}));
    double roof_four = evaluateGablesAnalyticS(
        buildProblem(wl, four, arch::Constraints{}));
    EXPECT_LE(roof_four, roof_one + 1e-6);
}

TEST(GablesAnalytic, BiggerGpuLowersTheRoofline)
{
    auto wl = workload::makeWorkload(workload::Variant::Optimized);
    arch::SocConfig small;
    small.cpuCores = 4;
    small.gpuSms = 16;
    arch::SocConfig big;
    big.cpuCores = 4;
    big.gpuSms = 64;
    double roof_small = evaluateGablesAnalyticS(
        buildProblem(wl, small, arch::Constraints{}));
    double roof_big = evaluateGablesAnalyticS(
        buildProblem(wl, big, arch::Constraints{}));
    EXPECT_LT(roof_big, roof_small);
}

TEST(GablesAnalytic, ExplicitStepOverrideIsHonoured)
{
    // A coarse explicit step quantizes the roofline upward but must
    // stay within one ceil-rounding of the fine default.
    ProblemSpec spec = makeTwoAppExample();
    double fine = evaluateGablesAnalyticS(spec);
    double coarse = evaluateGablesAnalyticS(spec, 1.0);
    EXPECT_GE(coarse + 1e-9, fine - 1.0 * spec.numPhases());
    EXPECT_GT(coarse, 0.0);
}

} // anonymous namespace
} // namespace baselines
} // namespace hilp
