#include "trace.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "str.hh"

namespace hilp {
namespace trace {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Per-thread event cap. Dropping (and counting) beyond the cap keeps
 * a runaway trace from eating memory while preserving the beginning
 * of the timeline, which is where the interesting structure lives.
 */
constexpr size_t kMaxEventsPerThread = 1 << 16;

/** A single pid for the whole process keeps exports deterministic. */
constexpr int64_t kPid = 1;

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_ring{false};

/** The calling thread's current trace context (0 = none). */
thread_local uint64_t tl_context = 0;

struct Event
{
    const char *name = nullptr;
    char phase = 'i'; // 'B', 'E', or 'i'.
    int64_t tsUs = 0;
    uint64_t ctx = 0; // Owning trace context (0 = none).
    int numArgs = 0;
    Arg args[4];
};

/**
 * One thread's event stream. Appends come only from the owning
 * thread; the mutex makes the occasional cross-thread read (export,
 * clear) race-free. In ring mode `head` is the index of the oldest
 * event once the buffer has filled; in append mode it stays 0.
 */
struct ThreadBuffer
{
    std::mutex mutex;
    int64_t tid = 0;
    std::string name;
    std::vector<Event> events;
    size_t head = 0;
    int64_t dropped = 0;
};

/**
 * Owns every thread buffer ever created (threads may exit before
 * export, so buffers must outlive them). Leaked deliberately: the
 * atexit trace dump must not race static destruction.
 */
struct BufferRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    int64_t nextTid = 1;
};

BufferRegistry &
bufferRegistry()
{
    static BufferRegistry *instance = new BufferRegistry;
    return *instance;
}

/** Trace epoch: timestamps are microseconds since first use. */
Clock::time_point
epoch()
{
    static const Clock::time_point t0 = Clock::now();
    return t0;
}

int64_t
nowUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - epoch())
        .count();
}

ThreadBuffer &
localBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> tl_buffer = [] {
        auto buffer = std::make_shared<ThreadBuffer>();
        BufferRegistry &reg = bufferRegistry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffer->tid = reg.nextTid++;
        reg.buffers.push_back(buffer);
        return buffer;
    }();
    return *tl_buffer;
}

void
record(const char *name, char phase, int numArgs, const Arg *args)
{
    int64_t ts = nowUs();
    ThreadBuffer &buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    Event event;
    event.name = name;
    event.phase = phase;
    event.tsUs = ts;
    event.ctx = tl_context;
    event.numArgs = std::min(numArgs, 4);
    for (int i = 0; i < event.numArgs; ++i)
        event.args[i] = args[i];
    if (buffer.events.size() >= kMaxEventsPerThread) {
        // At capacity: ring mode overwrites the oldest event (the
        // daemon wants the most recent window); append mode drops
        // the newcomer (batch runs want the beginning). Either way
        // the loss is counted.
        ++buffer.dropped;
        if (!g_ring.load(std::memory_order_relaxed))
            return;
        buffer.events[buffer.head] = std::move(event);
        buffer.head = (buffer.head + 1) % buffer.events.size();
        return;
    }
    buffer.events.push_back(std::move(event));
}

Json
argsJson(const Event &event)
{
    Json args = Json::object();
    for (int i = 0; i < event.numArgs; ++i) {
        const Arg &arg = event.args[i];
        switch (arg.kind) {
          case Arg::Kind::Int:
            args.set(arg.key, Json::number(arg.i));
            break;
          case Arg::Kind::Num:
            args.set(arg.key, Json::number(arg.d));
            break;
          case Arg::Kind::Str:
            args.set(arg.key, Json::string(arg.s));
            break;
          case Arg::Kind::None:
            break;
        }
    }
    return args;
}

Json
eventJson(const Event &event, int64_t tid)
{
    Json out = Json::object();
    out.set("name", Json::string(event.name));
    out.set("ph", Json::string(std::string(1, event.phase)));
    out.set("ts", Json::number(event.tsUs));
    out.set("pid", Json::number(kPid));
    out.set("tid", Json::number(tid));
    out.set("cat", Json::string("hilp"));
    if (event.phase == 'i')
        out.set("s", Json::string("t")); // Thread-scoped instant.
    if (event.numArgs > 0 || event.ctx != 0) {
        Json args = argsJson(event);
        if (event.ctx != 0)
            args.set("trace_id",
                     Json::number(static_cast<int64_t>(event.ctx)));
        out.set("args", std::move(args));
    }
    return out;
}

Json
threadNameMeta(int64_t tid, const std::string &name)
{
    Json meta = Json::object();
    meta.set("name", Json::string("thread_name"));
    meta.set("ph", Json::string("M"));
    meta.set("pid", Json::number(kPid));
    meta.set("tid", Json::number(tid));
    Json args = Json::object();
    args.set("name", Json::string(name));
    meta.set("args", std::move(args));
    return meta;
}

} // anonymous namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    // Pin the epoch before the first event so timestamps stay small.
    epoch();
    g_enabled.store(on, std::memory_order_relaxed);
}

void
setThreadName(const std::string &name)
{
    ThreadBuffer &buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.name = name;
}

void
setRingBuffered(bool on)
{
    g_ring.store(on, std::memory_order_relaxed);
}

bool
ringBuffered()
{
    return g_ring.load(std::memory_order_relaxed);
}

uint64_t
newTraceId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
currentContext()
{
    return tl_context;
}

ContextScope::ContextScope(uint64_t ctx)
{
    if (ctx == 0)
        return;
    saved_ = tl_context;
    tl_context = ctx;
    active_ = true;
}

ContextScope::~ContextScope()
{
    if (active_)
        tl_context = saved_;
}

void
instant(const char *name)
{
    if (!enabled() || !name)
        return;
    record(name, 'i', 0, nullptr);
}

void
instant(const char *name, Arg a0)
{
    if (!enabled() || !name)
        return;
    Arg args[1] = {std::move(a0)};
    record(name, 'i', 1, args);
}

void
instant(const char *name, Arg a0, Arg a1)
{
    if (!enabled() || !name)
        return;
    Arg args[2] = {std::move(a0), std::move(a1)};
    record(name, 'i', 2, args);
}

Span::Span(const char *name)
{
    if (!name || !enabled())
        return;
    name_ = name;
    active_ = true;
    record(name, 'B', 0, nullptr);
}

Span::Span(const char *name, Arg a0)
{
    if (!name || !enabled())
        return;
    name_ = name;
    active_ = true;
    Arg args[1] = {std::move(a0)};
    record(name, 'B', 1, args);
}

Span::Span(const char *name, Arg a0, Arg a1)
{
    if (!name || !enabled())
        return;
    name_ = name;
    active_ = true;
    Arg args[2] = {std::move(a0), std::move(a1)};
    record(name, 'B', 2, args);
}

void
Span::arg(Arg a)
{
    if (!active_ || numEndArgs_ >= 4)
        return;
    endArgs_[numEndArgs_++] = std::move(a);
}

Span::~Span()
{
    if (!active_)
        return;
    // The end is recorded even if recording was turned off while the
    // span was open, so begins never go unmatched.
    record(name_, 'E', numEndArgs_, endArgs_);
}

namespace {

/**
 * Shared export core. Snapshot the buffer list, then drain each
 * buffer under its own lock (appends from live threads keep
 * working). When `filterByContext` is set, only events stamped with
 * `ctx` are exported.
 *
 * Two balance rules keep every exported per-thread stream strictly
 * B/E balanced: an end whose begin is absent (overwritten by the
 * ring, or filtered out by context) is skipped, and a begin whose
 * end is absent (dropped, filtered, or simply still open) gets a
 * synthesized end at export time.
 */
Json
exportJson(bool filterByContext, uint64_t ctx)
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        BufferRegistry &reg = bufferRegistry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
    }

    Json events = Json::array();
    Json process = Json::object();
    process.set("name", Json::string("process_name"));
    process.set("ph", Json::string("M"));
    process.set("pid", Json::number(kPid));
    Json process_args = Json::object();
    process_args.set("name", Json::string("hilp"));
    process.set("args", std::move(process_args));
    events.append(std::move(process));

    int64_t dropped = 0;
    int64_t close_ts = nowUs();
    for (const std::shared_ptr<ThreadBuffer> &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        if (!buffer->name.empty())
            events.append(threadNameMeta(buffer->tid, buffer->name));
        dropped += buffer->dropped;

        // Ring order: oldest event first. In append mode head is 0
        // and this is plain front-to-back iteration.
        size_t n = buffer->events.size();
        std::vector<const Event *> open;
        for (size_t k = 0; k < n; ++k) {
            const Event &event =
                buffer->events[(buffer->head + k) % n];
            if (filterByContext && event.ctx != ctx)
                continue;
            if (event.phase == 'B') {
                open.push_back(&event);
            } else if (event.phase == 'E') {
                if (open.empty() ||
                    std::strcmp(open.back()->name, event.name) != 0)
                    continue; // Begin not exported: skip the end.
                open.pop_back();
            }
            events.append(eventJson(event, buffer->tid));
        }
        for (auto it = open.rbegin(); it != open.rend(); ++it) {
            Event end;
            end.name = (*it)->name;
            end.phase = 'E';
            end.tsUs = std::max(close_ts, (*it)->tsUs);
            end.ctx = (*it)->ctx;
            events.append(eventJson(end, buffer->tid));
        }
    }

    Json out = Json::object();
    out.set("traceEvents", std::move(events));
    out.set("displayTimeUnit", Json::string("ms"));
    out.set("droppedEvents", Json::number(dropped));
    return out;
}

} // anonymous namespace

Json
toJson()
{
    return exportJson(false, 0);
}

Json
toJsonForContext(uint64_t ctx)
{
    return exportJson(true, ctx);
}

std::string
writeFile(const std::string &path)
{
    Json trace = toJson();
    std::ofstream file(path);
    if (!file)
        return format("cannot open '%s' for writing", path.c_str());
    file << trace.dump() << "\n";
    file.close();
    if (!file)
        return format("write to '%s' failed", path.c_str());
    return "";
}

int64_t
droppedEvents()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        BufferRegistry &reg = bufferRegistry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
    }
    int64_t dropped = 0;
    for (const std::shared_ptr<ThreadBuffer> &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        dropped += buffer->dropped;
    }
    return dropped;
}

void
clearAll()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        BufferRegistry &reg = bufferRegistry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
    }
    for (const std::shared_ptr<ThreadBuffer> &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        buffer->events.clear();
        buffer->head = 0;
        buffer->dropped = 0;
    }
}

std::string
taggedPath(const std::string &path, const std::string &tag)
{
    size_t slash = path.find_last_of('/');
    size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "." + tag;
    return path.substr(0, dot) + "." + tag + path.substr(dot);
}

std::string
validateChromeTrace(const Json &trace)
{
    if (!trace.isObject())
        return "trace is not a JSON object";
    const Json *events = trace.find("traceEvents");
    if (!events)
        return "missing 'traceEvents'";
    if (!events->isArray())
        return "'traceEvents' is not an array";

    struct ThreadState
    {
        std::vector<std::string> stack; // Open span names.
        int64_t lastTs = INT64_MIN;
    };
    // Keyed by (pid, tid) rendered as text; trace sizes make a map
    // lookup per event irrelevant.
    std::vector<std::pair<std::string, ThreadState>> threads;
    auto stateOf = [&](const std::string &key) -> ThreadState & {
        for (auto &[k, state] : threads)
            if (k == key)
                return state;
        threads.emplace_back(key, ThreadState{});
        return threads.back().second;
    };

    for (size_t i = 0; i < events->size(); ++i) {
        const Json &event = events->at(i);
        if (!event.isObject())
            return format("event %zu is not an object", i);
        const Json *name = event.find("name");
        if (!name || !name->isString() ||
            name->stringValue().empty())
            return format("event %zu has no name", i);
        const Json *ph = event.find("ph");
        if (!ph || !ph->isString() || ph->stringValue().size() != 1)
            return format("event %zu has no single-char 'ph'", i);
        char phase = ph->stringValue()[0];
        if (phase == 'M')
            continue; // Metadata events carry no timeline fields.
        const Json *pid = event.find("pid");
        const Json *tid = event.find("tid");
        const Json *ts = event.find("ts");
        if (!pid || !pid->isNumber())
            return format("event %zu ('%s') has no pid", i,
                          name->stringValue().c_str());
        if (!tid || !tid->isNumber())
            return format("event %zu ('%s') has no tid", i,
                          name->stringValue().c_str());
        if (!ts || !ts->isNumber())
            return format("event %zu ('%s') has no ts", i,
                          name->stringValue().c_str());

        std::string key = format("%lld/%lld",
                                 static_cast<long long>(
                                     pid->intValue()),
                                 static_cast<long long>(
                                     tid->intValue()));
        ThreadState &state = stateOf(key);
        int64_t when = ts->intValue();
        if (when < state.lastTs)
            return format("event %zu ('%s'): timestamp %lld goes "
                          "backwards on thread %s", i,
                          name->stringValue().c_str(),
                          static_cast<long long>(when), key.c_str());
        state.lastTs = when;

        if (phase == 'B') {
            state.stack.push_back(name->stringValue());
        } else if (phase == 'E') {
            if (state.stack.empty())
                return format("event %zu ('%s'): end without begin "
                              "on thread %s", i,
                              name->stringValue().c_str(),
                              key.c_str());
            if (state.stack.back() != name->stringValue())
                return format("event %zu: end '%s' does not match "
                              "open span '%s' on thread %s", i,
                              name->stringValue().c_str(),
                              state.stack.back().c_str(),
                              key.c_str());
            state.stack.pop_back();
        }
    }
    for (const auto &[key, state] : threads) {
        if (!state.stack.empty())
            return format("thread %s: %zu span(s) never ended "
                          "(first: '%s')", key.c_str(),
                          state.stack.size(),
                          state.stack.front().c_str());
    }
    return "";
}

} // namespace trace
} // namespace hilp
