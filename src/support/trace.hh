/**
 * @file
 * A span-based tracer exporting Chrome trace-event JSON.
 *
 * Instrumentation sites use TRACE_SPAN (RAII begin/end pairs) and
 * TRACE_INSTANT (point events); events land in per-thread buffers
 * with no cross-thread contention and are exported with toJson() /
 * writeFile() as a Chrome trace loadable in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Tracing is off by default: every trace point compiles to a single
 * relaxed-load branch, so instrumented hot paths (the solver's
 * propagation fixpoint, the search recursion) pay nothing measurable
 * until setEnabled(true) - typically via the bench harness's
 * --trace-out flag. Per-thread buffers are capped; events past the
 * cap are counted as dropped (reported in the export) rather than
 * overwriting earlier ones, and spans whose end was dropped or is
 * still open at export time get a synthesized end so the exported
 * stream is always begin/end balanced per thread.
 */

#ifndef HILP_SUPPORT_TRACE_HH
#define HILP_SUPPORT_TRACE_HH

#include <cstdint>
#include <string>

#include "json.hh"

namespace hilp {
namespace trace {

/** Is tracing currently recording? A relaxed atomic load. */
bool enabled();

/** Turn recording on or off process-wide. */
void setEnabled(bool on);

/**
 * Name the calling thread in the exported trace (Perfetto shows it
 * as the track title). Cheap; safe to call with tracing disabled.
 */
void setThreadName(const std::string &name);

/**
 * Ring-buffered recording: when a per-thread buffer is full, the
 * oldest event is overwritten instead of the newest dropped, so a
 * long-lived process (the daemon) always holds the most *recent*
 * window of activity. Overwritten events count as dropped. Exports
 * skip end events whose begin was overwritten and synthesize ends
 * for begins whose end has not happened yet, so the exported stream
 * stays balanced either way.
 */
void setRingBuffered(bool on);
bool ringBuffered();

// --- Trace context (request-scoped tracing) ---------------------------
//
// A trace context is a process-unique id stamped on every event a
// thread records while a ContextScope is alive. The daemon assigns
// one id per request at admission and re-establishes the scope on
// every thread that works for that request (the connection handler,
// the executor running the job, each sweep worker), so the spans of
// one request can be told apart from concurrent requests sharing the
// same threads - and exported alone with toJsonForContext().

/** Allocate a fresh nonzero trace id. Thread-safe. */
uint64_t newTraceId();

/** The calling thread's current trace context (0 = none). */
uint64_t currentContext();

/**
 * RAII: events recorded by the calling thread while the scope is
 * alive carry the given context id (exported as args.trace_id).
 * Scopes nest; destruction restores the previous context. A zero id
 * keeps whatever context is already current.
 */
class ContextScope
{
  public:
    explicit ContextScope(uint64_t ctx);
    ~ContextScope();

    ContextScope(const ContextScope &) = delete;
    ContextScope &operator=(const ContextScope &) = delete;

  private:
    uint64_t saved_ = 0;
    bool active_ = false;
};

/**
 * One key/value annotation on an event. Keys must be string
 * literals (the tracer stores the pointer, not a copy).
 */
struct Arg
{
    enum class Kind { None, Int, Num, Str };

    const char *key = nullptr;
    Kind kind = Kind::None;
    int64_t i = 0;
    double d = 0.0;
    std::string s;

    static Arg
    intArg(const char *key, int64_t value)
    {
        Arg arg;
        arg.key = key;
        arg.kind = Kind::Int;
        arg.i = value;
        return arg;
    }

    static Arg
    numArg(const char *key, double value)
    {
        Arg arg;
        arg.key = key;
        arg.kind = Kind::Num;
        arg.d = value;
        return arg;
    }

    static Arg
    strArg(const char *key, std::string value)
    {
        Arg arg;
        arg.key = key;
        arg.kind = Kind::Str;
        arg.s = std::move(value);
        return arg;
    }
};

/** Record a point event (phase "i") on the calling thread. */
void instant(const char *name);
void instant(const char *name, Arg a0);
void instant(const char *name, Arg a0, Arg a1);

/**
 * An RAII span: records a begin event at construction and the
 * matching end event at destruction, on the calling thread. A null
 * name or disabled tracing makes the span a no-op. The name must be
 * a string literal (or otherwise outlive the trace export).
 */
class Span
{
  public:
    explicit Span(const char *name);
    Span(const char *name, Arg a0);
    Span(const char *name, Arg a0, Arg a1);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /**
     * Attach an annotation to the span's end event (for values only
     * known when the work finishes). At most four; extras are dropped.
     */
    void arg(Arg a);

  private:
    const char *name_ = nullptr;
    bool active_ = false;
    int numEndArgs_ = 0;
    Arg endArgs_[4];
};

/**
 * Export everything recorded so far as a Chrome trace-event JSON
 * object: {"traceEvents": [...], "droppedEvents": N}. Thread-safe;
 * spans still open are ended at the current time in the export (the
 * recorded buffers are not modified).
 */
Json toJson();

/**
 * Export only the events stamped with the given trace context (plus
 * process/thread metadata), balanced the same way as toJson(). This
 * is the slow-request dump: one request's span tree extracted from
 * buffers shared with concurrent requests.
 */
Json toJsonForContext(uint64_t ctx);

/**
 * Dump toJson() to a file. Returns "" on success, else an error
 * message.
 */
std::string writeFile(const std::string &path);

/**
 * Insert ".tag" before the path's extension ("out/trace.json", "7"
 * -> "out/trace.7.json"; no extension appends ".7"). Used to stamp
 * per-process trace files with the pid and per-request dumps with
 * the request id so concurrent writers never overwrite each other.
 */
std::string taggedPath(const std::string &path,
                       const std::string &tag);

/** Total events dropped to per-thread buffer caps so far. */
int64_t droppedEvents();

/**
 * Discard all recorded events and drop counts (thread buffers stay
 * registered). For tests and repeated measurement runs.
 */
void clearAll();

/**
 * Structural validation of a Chrome trace object: "traceEvents"
 * array present; every event carries name/ph/pid/tid/ts; per
 * (pid, tid) timestamps are monotonically non-decreasing and B/E
 * events are balanced and properly nested. Returns "" when valid,
 * else a description of the first problem.
 */
std::string validateChromeTrace(const Json &trace);

} // namespace trace
} // namespace hilp

#define HILP_TRACE_CONCAT2(a, b) a##b
#define HILP_TRACE_CONCAT(a, b) HILP_TRACE_CONCAT2(a, b)

/**
 * Open a span covering the rest of the enclosing scope:
 * TRACE_SPAN("cp.solve") or
 * TRACE_SPAN("cp.solve", trace::Arg::intArg("tasks", n)).
 */
#define TRACE_SPAN(...)                                                 \
    ::hilp::trace::Span HILP_TRACE_CONCAT(hilp_trace_span_,             \
                                          __COUNTER__)(__VA_ARGS__)

/** Record a point event: TRACE_INSTANT("cp.incumbent", args...). */
#define TRACE_INSTANT(...) ::hilp::trace::instant(__VA_ARGS__)

#endif // HILP_SUPPORT_TRACE_HH
