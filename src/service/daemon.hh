/**
 * @file
 * hilpd's connection handling: the daemon loop that accepts stream
 * connections and speaks the NDJSON protocol (protocol.hh) against a
 * shared EvalService.
 *
 * Every connection gets its own handler thread; eval and sweep
 * requests go through the service's admission-controlled job queue
 * (so a flooded daemon rejects with a reason instead of queueing
 * unboundedly), while stats and shutdown are answered inline. The
 * per-connection handler is exposed directly (serveConnection) so
 * tests can drive the full protocol over a socketpair without
 * binding anything.
 */

#ifndef HILP_SERVICE_DAEMON_HH
#define HILP_SERVICE_DAEMON_HH

#include <atomic>

#include "eval_service.hh"
#include "support/net.hh"

namespace hilp {
namespace service {

class Daemon
{
  public:
    explicit Daemon(EvalService &service) : service_(service) {}

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Serve one established connection until the peer disconnects or
     * sends a shutdown request. Returns true when the connection
     * requested daemon shutdown (the stop flag is then already set).
     * Thread-safe: the daemon runs one handler per connection.
     */
    bool serveConnection(net::Socket socket);

    /**
     * Accept-and-serve loop: one handler thread per connection,
     * until stop() is called or a connection requests shutdown. The
     * listener is closed (and its unix socket path unlinked) before
     * returning; in-flight requests finish first.
     */
    void run(net::Listener &listener);

    /**
     * Request the accept loop to exit. Callable from any thread and
     * from signal handlers' deferred context (it only flips an atomic
     * and shuts down the listening socket).
     */
    void stop();

    bool stopping() const { return stop_.load(); }

  private:
    EvalService &service_;
    std::atomic<bool> stop_{false};
    std::atomic<int> listenerFd_{-1};
};

} // namespace service
} // namespace hilp

#endif // HILP_SERVICE_DAEMON_HH
