/** @file Unit tests for the table printer. */

#include <gtest/gtest.h>

#include "support/table.hh"

namespace hilp {
namespace {

TEST(Table, AsciiAlignsColumns)
{
    Table table({"name", "value"});
    table.setAlign(0, Table::Align::Left);
    table.addRow({"a", "1"});
    table.addRow({"longer", "22"});
    std::string out = table.toAscii();
    // Header, separator, two rows.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("------"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Right-aligned numbers: "1" is padded to width of "value".
    EXPECT_NE(out.find("     1"), std::string::npos);
}

TEST(Table, RowCount)
{
    Table table({"x"});
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, CsvBasic)
{
    Table table({"a", "b"});
    table.addRow({"1", "2"});
    EXPECT_EQ(table.toCsv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    Table table({"a", "b"});
    table.addRow({"with,comma", "with\"quote"});
    std::string csv = table.toCsv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(RowBuilderTest, MixedCells)
{
    auto row = RowBuilder()
        .cell("name")
        .cell(static_cast<int64_t>(42))
        .cell(3.14159, 2)
        .take();
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[0], "name");
    EXPECT_EQ(row[1], "42");
    EXPECT_EQ(row[2], "3.14");
}

} // anonymous namespace
} // namespace hilp
