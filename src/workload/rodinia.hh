/**
 * @file
 * The Rodinia 3.1 benchmark profiles (Table II) and the workload
 * factories of Section IV.
 *
 * The paper profiles ten scalable Rodinia benchmarks on an AMD EPYC
 * 7543 and an Nvidia A100 and reduces the measurements to Table II:
 * per-phase execution times, full-GPU bandwidth, and power-law fits
 * over the MIG SM counts. This module embeds that table verbatim and
 * derives the three workloads used throughout the paper:
 *
 *  - Rodinia:   measured setup/teardown times,
 *  - Default:   setup/teardown reduced 5x,
 *  - Optimized: setup/teardown reduced 20x.
 */

#ifndef HILP_WORKLOAD_RODINIA_HH
#define HILP_WORKLOAD_RODINIA_HH

#include <string>
#include <vector>

#include "support/powerlaw.hh"
#include "workload.hh"

namespace hilp {
namespace workload {

/** One row of Table II. */
struct RodiniaBenchmark
{
    const char *name;    //!< Full benchmark name.
    const char *abbrev;  //!< Table II abbreviation, e.g. "HS".
    double setupS;       //!< Setup phase, seconds on one CPU core.
    double computeCpuS;  //!< Compute phase on one CPU core, seconds.
    double computeGpuS;  //!< Compute phase on the 98-SM GPU, seconds.
    double teardownS;    //!< Teardown phase, seconds on one CPU core.
    double gpuBwGBs;     //!< Compute-phase bandwidth on the 98-SM GPU.
    PowerLaw timeLaw;    //!< GPU-time power law (a, b, r2), 14-SM base.
    PowerLaw bwLaw;      //!< GPU-bandwidth power law, 14-SM base.
    const char *scaledConfig; //!< Input configuration used (Table II).
};

/**
 * The ten Table II benchmarks in table order. The vector index is
 * the benchmark identifier used for DSA targets throughout HILP.
 */
const std::vector<RodiniaBenchmark> &rodiniaBenchmarks();

/** Index of a benchmark by abbreviation; fatal() when unknown. */
int rodiniaIndex(const std::string &abbrev);

/** The three Section IV workload variants. */
enum class Variant {
    Rodinia,   //!< Measured setup/teardown.
    Default,   //!< Setup/teardown divided by 5.
    Optimized, //!< Setup/teardown divided by 20.
};

/** The setup/teardown divisor of a variant (1, 5, or 20). */
double variantDivisor(Variant variant);

/** Human-readable variant name. */
const char *toString(Variant variant);

/**
 * Build the three-phase application (setup, compute, teardown) for
 * one benchmark under the given setup/teardown divisor. The compute
 * phase's DSA target is the benchmark's index.
 */
Application makeRodiniaApp(int bench_id, double setup_td_divisor);

/**
 * Build the full ten-application workload for a variant. With
 * copies > 1 the workload contains that many independent instances
 * of every benchmark (the paper's workloads use a single copy; more
 * copies raise the available WLP).
 */
Workload makeWorkload(Variant variant, int copies = 1);

/**
 * Benchmark identifiers ordered by descending CPU compute time: the
 * paper's DSA allocation priority (LUD first, then HS, ...).
 */
std::vector<int> dsaPriorityOrder();

} // namespace workload
} // namespace hilp

#endif // HILP_WORKLOAD_RODINIA_HH
