/** @file Unit tests for Pareto extraction, classification, and the
 * design-space explorer. */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "dse/explore.hh"
#include "dse/pareto.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace dse {
namespace {

TEST(Pareto, SimpleFront)
{
    // (cost, value): (1,1) (2,3) (3,2) (4,4).
    std::vector<double> cost = {1, 2, 3, 4};
    std::vector<double> value = {1, 3, 2, 4};
    auto front = paretoFront(cost, value);
    EXPECT_EQ(front, (std::vector<size_t>{0, 1, 3}));
}

TEST(Pareto, DominatedPointExcluded)
{
    std::vector<double> cost = {1, 2};
    std::vector<double> value = {5, 4}; // more cost, less value.
    auto front = paretoFront(cost, value);
    EXPECT_EQ(front, (std::vector<size_t>{0}));
}

TEST(Pareto, EqualCostKeepsBestValue)
{
    std::vector<double> cost = {1, 1, 2};
    std::vector<double> value = {2, 3, 4};
    auto front = paretoFront(cost, value);
    EXPECT_EQ(front, (std::vector<size_t>{1, 2}));
}

TEST(Pareto, EmptyInput)
{
    EXPECT_TRUE(paretoFront({}, {}).empty());
}

TEST(Pareto, SinglePoint)
{
    auto front = paretoFront({1.0}, {1.0});
    EXPECT_EQ(front, (std::vector<size_t>{0}));
}

TEST(Pareto, FrontIsSortedByCost)
{
    std::vector<double> cost = {5, 1, 3, 2, 4};
    std::vector<double> value = {9, 1, 5, 3, 7};
    auto front = paretoFront(cost, value);
    for (size_t i = 1; i < front.size(); ++i)
        EXPECT_LE(cost[front[i - 1]], cost[front[i]]);
}

TEST(Classify, GpuDominated)
{
    arch::SocConfig config;
    config.cpuCores = 1;
    config.gpuSms = 64;
    config.dsas = {{1, 0}};
    EXPECT_EQ(classifyAccelMix(config), AccelMix::GpuDominated);
}

TEST(Classify, DsaDominated)
{
    arch::SocConfig config;
    config.cpuCores = 1;
    config.gpuSms = 0;
    config.dsas = {{16, 0}, {16, 1}};
    EXPECT_EQ(classifyAccelMix(config), AccelMix::DsaDominated);
}

TEST(Classify, Mixed)
{
    arch::SocConfig config;
    config.cpuCores = 1;
    config.gpuSms = 16;
    config.dsas = {{16, 0}};
    EXPECT_EQ(classifyAccelMix(config), AccelMix::Mixed);
}

TEST(Classify, NoAccelerators)
{
    arch::SocConfig config;
    config.cpuCores = 4;
    EXPECT_EQ(classifyAccelMix(config), AccelMix::None);
}

TEST(Classify, SeventyFivePercentBoundary)
{
    // GPU 60 SMs vs DSA 20 PEs: GPU share 75% exactly -> Mixed.
    arch::SocConfig config;
    config.cpuCores = 1;
    config.gpuSms = 60;
    config.dsas = {{20, 0}};
    EXPECT_EQ(classifyAccelMix(config), AccelMix::Mixed);
    // 61/81: just over -> GpuDominated... (61/81 = 0.753).
    config.gpuSms = 61;
    config.dsas = {{20, 0}};
    EXPECT_EQ(classifyAccelMix(config), AccelMix::GpuDominated);
}

TEST(Classify, Names)
{
    EXPECT_STREQ(toString(AccelMix::None), "none");
    EXPECT_STREQ(toString(AccelMix::GpuDominated), "gpu");
    EXPECT_STREQ(toString(AccelMix::DsaDominated), "dsa");
    EXPECT_STREQ(toString(AccelMix::Mixed), "mixed");
}

TEST(Explore, ModelNames)
{
    EXPECT_STREQ(toString(ModelKind::MultiAmdahl), "MA");
    EXPECT_STREQ(toString(ModelKind::Hilp), "HILP");
    EXPECT_STREQ(toString(ModelKind::Gables), "Gables");
}

TEST(Explore, HomogeneousSocUnderMaHasUnitSpeedup)
{
    // MA on the 1-CPU SoC is exactly the sequential reference.
    arch::SocConfig config;
    config.cpuCores = 1;
    DseOptions options;
    DsePoint point = evaluatePoint(
        config, workload::makeWorkload(workload::Variant::Default),
        arch::Constraints{}, ModelKind::MultiAmdahl, options);
    ASSERT_TRUE(point.ok);
    EXPECT_NEAR(point.speedup, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(point.averageWlp, 1.0);
    EXPECT_EQ(point.mix, AccelMix::None);
}

TEST(Explore, MaIsInsensitiveToCpuCount)
{
    // MA executes sequentially: extra CPU cores change nothing.
    auto wl = workload::makeWorkload(workload::Variant::Default);
    DseOptions options;
    arch::SocConfig one;
    one.cpuCores = 1;
    one.gpuSms = 64;
    arch::SocConfig four;
    four.cpuCores = 4;
    four.gpuSms = 64;
    DsePoint p1 = evaluatePoint(one, wl, arch::Constraints{},
                                ModelKind::MultiAmdahl, options);
    DsePoint p4 = evaluatePoint(four, wl, arch::Constraints{},
                                ModelKind::MultiAmdahl, options);
    ASSERT_TRUE(p1.ok && p4.ok);
    EXPECT_NEAR(p1.makespanS, p4.makespanS, 1e-6);
}

TEST(Explore, SpaceEvaluationMatchesPointEvaluation)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    std::vector<arch::SocConfig> configs;
    for (int cpus : {1, 2}) {
        arch::SocConfig c;
        c.cpuCores = cpus;
        c.gpuSms = 16;
        configs.push_back(c);
    }
    DseOptions options;
    options.threads = 2;
    auto points = exploreSpace(configs, wl, arch::Constraints{},
                               ModelKind::MultiAmdahl, options);
    ASSERT_EQ(points.size(), 2u);
    for (size_t i = 0; i < configs.size(); ++i) {
        DsePoint reference =
            evaluatePoint(configs[i], wl, arch::Constraints{},
                          ModelKind::MultiAmdahl, options);
        EXPECT_NEAR(points[i].makespanS, reference.makespanS, 1e-9);
        EXPECT_NEAR(points[i].areaMm2, reference.areaMm2, 1e-9);
    }
}

TEST(Explore, UnschedulableConfigReportsNotOk)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::Constraints constraints;
    constraints.powerBudgetW = 5.0; // Below one CPU core's 7 W.
    arch::SocConfig config;
    config.cpuCores = 1;
    DseOptions options;
    DsePoint point = evaluatePoint(config, wl, constraints,
                                   ModelKind::Hilp, options);
    EXPECT_FALSE(point.ok);
    EXPECT_DOUBLE_EQ(point.speedup, 0.0);
    // The silent-drop bug: the reason must be reported, not lost.
    EXPECT_FALSE(point.note.empty());
    EXPECT_EQ(point.status, cp::SolveStatus::NoSolution);
}

/** A small but non-trivial HILP design space: two warm-start chains. */
std::vector<arch::SocConfig>
smallHilpSpace()
{
    std::vector<arch::SocConfig> configs;
    for (int cpus : {2, 4}) {
        for (int sms : {4, 16, 64}) {
            arch::SocConfig c;
            c.cpuCores = cpus;
            c.gpuSms = sms;
            configs.push_back(c);
        }
    }
    return configs;
}

DseOptions
fastHilpOptions()
{
    DseOptions options;
    options.engine.solver.maxSeconds = 2.0;
    options.threads = 2;
    return options;
}

TEST(Explore, ReuseMatchesColdStartResults)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto configs = smallHilpSpace();

    DseOptions cold = fastHilpOptions();
    cold.reuse = false;
    auto cold_points = exploreSpace(configs, wl, arch::Constraints{},
                                    ModelKind::Hilp, cold);

    DseOptions warm = fastHilpOptions();
    auto warm_points = exploreSpace(configs, wl, arch::Constraints{},
                                    ModelKind::Hilp, warm);

    ASSERT_EQ(cold_points.size(), warm_points.size());
    for (size_t i = 0; i < cold_points.size(); ++i) {
        ASSERT_EQ(cold_points[i].ok, warm_points[i].ok) << i;
        if (!cold_points[i].ok)
            continue;
        // Reuse changes solver effort, never certified quality: both
        // runs must agree within their certified optimality gaps.
        double tolerance = cold_points[i].makespanS *
            (cold_points[i].gap + warm_points[i].gap + 1e-9);
        EXPECT_NEAR(warm_points[i].makespanS,
                    cold_points[i].makespanS, tolerance) << i;
    }
}

TEST(Explore, ReuseChainsWarmStartLargerGpus)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto configs = smallHilpSpace();
    auto points = exploreSpace(configs, wl, arch::Constraints{},
                               ModelKind::Hilp, fastHilpOptions());
    // The first config of each (cpu) chain solves cold; at least one
    // larger-GPU neighbor must have accepted the transferred hint.
    int warm_started = 0;
    for (const DsePoint &point : points)
        warm_started += point.warmStarted ? 1 : 0;
    EXPECT_GT(warm_started, 0);
}

TEST(Explore, SharedMemoServesRepeatSweep)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto configs = smallHilpSpace();
    SolveMemo memo;
    DseOptions options = fastHilpOptions();
    options.memo = &memo;

    auto first = exploreSpace(configs, wl, arch::Constraints{},
                              ModelKind::Hilp, options);
    auto second = exploreSpace(configs, wl, arch::Constraints{},
                               ModelKind::Hilp, options);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < second.size(); ++i) {
        EXPECT_TRUE(second[i].cacheHit) << i;
        EXPECT_EQ(second[i].solves, 0) << i;
        EXPECT_DOUBLE_EQ(second[i].makespanS, first[i].makespanS) << i;
    }
}

TEST(Explore, SolverTelemetryIsPopulated)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig config;
    config.cpuCores = 2;
    config.gpuSms = 16;
    DsePoint point = evaluatePoint(config, wl, arch::Constraints{},
                                   ModelKind::Hilp, fastHilpOptions());
    ASSERT_TRUE(point.ok);
    EXPECT_GT(point.solves, 0);
    EXPECT_GT(point.nodes, 0);
    EXPECT_GE(point.solveSeconds, 0.0);
    EXPECT_TRUE(point.note.empty());
}

TEST(Explore, FaultIsolationKeepsSweepAlive)
{
    // One poisoned config throws on every attempt (including the
    // reduced-budget retry); the sweep must record it as errored and
    // still complete every other point. MA keeps the test fast.
    auto wl = workload::makeWorkload(workload::Variant::Default);
    std::vector<arch::SocConfig> configs;
    for (int cpus : {1, 2, 4}) {
        arch::SocConfig c;
        c.cpuCores = cpus;
        configs.push_back(c);
    }
    DseOptions options;
    options.threads = 2;
    options.injectFault = [](const arch::SocConfig &config) {
        if (config.cpuCores == 2)
            throw std::runtime_error("injected solver crash");
    };
    auto points = exploreSpace(configs, wl, arch::Constraints{},
                               ModelKind::MultiAmdahl, options);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_TRUE(points[0].ok);
    EXPECT_TRUE(points[2].ok);
    EXPECT_FALSE(points[1].ok);
    EXPECT_TRUE(points[1].errored);
    EXPECT_NE(points[1].note.find("injected solver crash"),
              std::string::npos);
    // The failed slot keeps its structural identity for the report.
    EXPECT_EQ(points[1].config.cpuCores, 2);
    EXPECT_GT(points[1].areaMm2, 0.0);
}

TEST(Explore, TransientFaultIsRetriedOnce)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    std::vector<arch::SocConfig> configs(1);
    configs[0].cpuCores = 1;
    std::atomic<int> attempts{0};
    DseOptions options;
    options.injectFault = [&attempts](const arch::SocConfig &) {
        if (attempts.fetch_add(1) == 0)
            throw std::runtime_error("transient failure");
    };
    auto points = exploreSpace(configs, wl, arch::Constraints{},
                               ModelKind::MultiAmdahl, options);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].ok);
    EXPECT_FALSE(points[0].errored);
    EXPECT_EQ(attempts.load(), 2);
}

TEST(Explore, FailFastRethrowsThePointException)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    std::vector<arch::SocConfig> configs(1);
    configs[0].cpuCores = 1;
    DseOptions options;
    options.failFast = true;
    options.injectFault = [](const arch::SocConfig &) {
        throw std::runtime_error("fail fast");
    };
    EXPECT_THROW(exploreSpace(configs, wl, arch::Constraints{},
                              ModelKind::MultiAmdahl, options),
                 std::runtime_error);
}

TEST(Explore, HilpChainsIsolateFaultsToo)
{
    // The reuse/similarity-chain path has its own worker loop; a
    // fault inside one chain must not poison the others.
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto configs = smallHilpSpace();
    DseOptions options = fastHilpOptions();
    options.injectFault = [](const arch::SocConfig &config) {
        if (config.cpuCores == 4 && config.gpuSms == 16)
            throw std::runtime_error("chain fault");
    };
    auto points = exploreSpace(configs, wl, arch::Constraints{},
                               ModelKind::Hilp, options);
    ASSERT_EQ(points.size(), configs.size());
    int ok = 0, errored = 0;
    for (const DsePoint &point : points) {
        ok += point.ok ? 1 : 0;
        errored += point.errored ? 1 : 0;
    }
    EXPECT_EQ(errored, 1);
    EXPECT_EQ(ok, static_cast<int>(points.size()) - 1);
}

} // anonymous namespace
} // namespace dse
} // namespace hilp
