#include "dvfs.hh"

#include "support/logging.hh"

namespace hilp {
namespace arch {

const std::vector<GpuOperatingPoint> &
gpuOperatingPoints()
{
    // Table III: clock (MHz) and measured all-SM power (W).
    static const std::vector<GpuOperatingPoint> points = {
        {210, 77.2},
        {240, 83.5},
        {300, 97.1},
        {360, 105.1},
        {420, 119.9},
        {480, 129.5},
        {540, 139.8},
        {600, 153.6},
        {660, 164.0},
        {705, 172.9},
        {765, 185.4},
    };
    return points;
}

const GpuOperatingPoint &
gpuOperatingPoint(int clock_mhz)
{
    for (const GpuOperatingPoint &point : gpuOperatingPoints())
        if (point.clockMhz == clock_mhz)
            return point;
    fatal("unknown GPU operating point: %d MHz", clock_mhz);
}

double
gpuPowerW(int sms, int clock_mhz)
{
    hilp_assert(sms >= 0);
    return sms * gpuOperatingPoint(clock_mhz).perSmPowerW();
}

double
dsaPowerW(int pes, int clock_mhz)
{
    return gpuPowerW(pes, clock_mhz);
}

} // namespace arch
} // namespace hilp
