/** @file Tests for epsilon-dominance in the Pareto front. */

#include <gtest/gtest.h>

#include "dse/pareto.hh"

namespace hilp {
namespace dse {
namespace {

TEST(ParetoEpsilon, ZeroEpsilonKeepsStrictImprovements)
{
    std::vector<double> cost = {1, 2};
    std::vector<double> value = {10.0, 10.0 + 1e-9};
    auto front = paretoFront(cost, value, 0.0);
    EXPECT_EQ(front.size(), 2u);
}

TEST(ParetoEpsilon, EpsilonSuppressesNoiseTies)
{
    std::vector<double> cost = {1, 2};
    std::vector<double> value = {10.0, 10.0 + 1e-9};
    auto front = paretoFront(cost, value, 1e-3);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0], 0u);
}

TEST(ParetoEpsilon, RealImprovementsSurviveEpsilon)
{
    std::vector<double> cost = {1, 2, 3};
    std::vector<double> value = {10.0, 10.2, 10.201};
    auto front = paretoFront(cost, value, 1e-2);
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0], 0u);
    EXPECT_EQ(front[1], 1u);
}

TEST(ParetoEpsilon, WorksWithNegativeValues)
{
    std::vector<double> cost = {1, 2, 3};
    std::vector<double> value = {-10.0, -5.0, -4.9999};
    auto front = paretoFront(cost, value, 1e-3);
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[1], 1u);
}

TEST(ParetoEpsilon, FirstPointAlwaysEnters)
{
    auto front = paretoFront({5.0}, {0.0}, 0.5);
    ASSERT_EQ(front.size(), 1u);
}

TEST(ParetoEpsilon, LargeEpsilonKeepsOnlyBigJumps)
{
    std::vector<double> cost = {1, 2, 3, 4};
    std::vector<double> value = {10, 10.5, 11, 21};
    auto front = paretoFront(cost, value, 0.5); // need +50%.
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0], 0u);
    EXPECT_EQ(front[1], 3u);
}

} // anonymous namespace
} // namespace dse
} // namespace hilp
