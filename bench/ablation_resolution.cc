/**
 * @file
 * Ablation: the time-step resolution trade-off of Section III-D.
 * Sweeps the step size on a fixed instance and reports the
 * discretized makespan (in seconds), the rounding inflation relative
 * to the finest resolution, and the solve time - the
 * resolution-vs-effort trade-off the paper's adaptive scheme
 * navigates.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common.hh"
#include "cp/solver.hh"
#include "hilp/builder.hh"
#include "hilp/discretize.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

ProblemSpec
instanceSpec()
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto priority = workload::dsaPriorityOrder();
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 16;
    soc.dsas = {{16, priority[0]}, {16, priority[1]}};
    return buildProblem(wl, soc, arch::Constraints{});
}

void
emitAblation()
{
    bench::banner(
        "Resolution ablation - the Section III-D trade-off",
        "Default workload on (c4,g16,d2^16); step size swept from\n"
        "coarse to fine at a fixed 2000 s horizon window. Coarse\n"
        "steps inflate the makespan (ceil rounding); fine steps\n"
        "grow the solution space and solve time.");

    ProblemSpec spec = instanceSpec();
    Table table({"step (s)", "horizon (steps)", "makespan (steps)",
                 "makespan (s)", "gap", "solve (ms)"});

    double finest_seconds = -1.0;
    for (double step : {20.0, 10.0, 5.0, 2.0, 1.0, 0.5}) {
        cp::Time horizon = static_cast<cp::Time>(2000.0 / step);
        DiscretizedProblem problem = discretize(spec, step, horizon);
        cp::SolverOptions options;
        options.maxSeconds = 5.0;
        options.targetGap = 0.05;
        auto begin = std::chrono::steady_clock::now();
        cp::Result result = cp::Solver(options).solve(problem.model);
        double ms = std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - begin).count();
        double seconds = result.makespan * step;
        if (result.hasSchedule())
            finest_seconds = seconds;
        table.addRow(
            RowBuilder()
                .cell(step, 1)
                .cell(static_cast<int64_t>(horizon))
                .cell(static_cast<int64_t>(result.makespan))
                .cell(seconds, 1)
                .cell(result.gap(), 3)
                .cell(ms, 1)
                .take());
    }
    table.print();
    std::printf("\nfinest-resolution makespan: %.1f s (coarser rows "
                "inflate via ceil rounding)\n", finest_seconds);
}

void
BM_SolveAtResolution(benchmark::State &state)
{
    ProblemSpec spec = instanceSpec();
    double step = 1.0 / static_cast<double>(state.range(0));
    cp::Time horizon = static_cast<cp::Time>(2000.0 / step);
    DiscretizedProblem problem = discretize(spec, step, horizon);
    cp::SolverOptions options;
    options.maxSeconds = 5.0;
    for (auto _ : state) {
        cp::Result result = cp::Solver(options).solve(problem.model);
        benchmark::DoNotOptimize(result.makespan);
    }
    state.SetLabel("step=1/" + std::to_string(state.range(0)) + "s");
}
BENCHMARK(BM_SolveAtResolution)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
