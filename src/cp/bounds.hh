/**
 * @file
 * Lower bounds on the optimal makespan.
 *
 * The paper's definition of a near-optimal schedule relies on the
 * solver's optimality bound: "the best possible execution time that
 * can exist within the part of the solution space that the solver has
 * not proved to be infeasible" (Section I). This module produces that
 * bound. It combines combinatorial arguments (critical path,
 * disjunctive group load, resource energy) with a linear-programming
 * relaxation solved by the lp library.
 */

#ifndef HILP_CP_BOUNDS_HH
#define HILP_CP_BOUNDS_HH

#include <vector>

#include "model.hh"

namespace hilp {
namespace cp {

/**
 * Earliest-start (head) and remaining-work (tail) values per task
 * computed over the precedence graph with minimum mode durations.
 * head[t] + tail[t] is a per-task lower bound on the makespan of any
 * schedule containing t.
 */
struct CriticalPathData
{
    std::vector<Time> head; //!< Earliest possible start of each task.
    std::vector<Time> tail; //!< Min duration of t plus longest
                            //!< downstream chain.
};

/** Compute heads and tails using minimum mode durations. */
CriticalPathData criticalPathData(const Model &model);

/**
 * The individual lower bounds; best() is the solver's optimality
 * bound.
 */
struct LowerBounds
{
    Time criticalPath = 0;   //!< Longest precedence chain.
    Time groupLoad = 0;      //!< Max load of tasks pinned to one group.
    Time resourceEnergy = 0; //!< Max ceil(min energy / capacity).
    Time lpRelaxation = 0;   //!< Rounded-up LP relaxation value (0
                             //!< when the LP was skipped or failed).

    /** The tightest of the bounds above. */
    Time best() const;
};

/**
 * Compute all makespan lower bounds for the model. When use_lp is
 * false the LP relaxation is skipped (useful inside tight search
 * loops). The LP relaxation includes mode-choice convexity,
 * precedence-path timing, per-group load, and per-resource energy
 * constraints; it dominates the combinatorial bounds in most cases
 * but costs a simplex solve.
 */
LowerBounds computeLowerBounds(const Model &model, bool use_lp = true);

} // namespace cp
} // namespace hilp

#endif // HILP_CP_BOUNDS_HH
