/** @file Unit tests for the greedy list scheduler. */

#include <gtest/gtest.h>

#include <numeric>

#include "cp/list_scheduler.hh"
#include "cp/model.hh"

namespace hilp {
namespace cp {
namespace {

/** Chain of n unit tasks on one group. */
Model
chainModel(int n, Time horizon)
{
    Model m;
    int g = m.addGroup("G");
    for (int i = 0; i < n; ++i) {
        Task t;
        t.name = "t" + std::to_string(i);
        t.modes.push_back({g, 1, {}});
        m.addTask(t);
    }
    for (int i = 0; i + 1 < n; ++i)
        m.addPrecedence(i, i + 1);
    m.setHorizon(horizon);
    return m;
}

std::vector<int>
identityOrder(int n)
{
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    return order;
}

TEST(ListScheduler, ChainSchedulesBackToBack)
{
    Model m = chainModel(5, 10);
    ListResult r = listSchedule(m, identityOrder(5));
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.makespan, 5);
    EXPECT_EQ(checkSchedule(m, r.schedule), "");
}

TEST(ListScheduler, ReversePriorityStillRespectsPrecedence)
{
    Model m = chainModel(5, 10);
    std::vector<int> order = {4, 3, 2, 1, 0};
    ListResult r = listSchedule(m, order);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.makespan, 5);
    EXPECT_EQ(checkSchedule(m, r.schedule), "");
}

TEST(ListScheduler, InfeasibleWhenHorizonTooShort)
{
    Model m = chainModel(5, 4);
    ListResult r = listSchedule(m, identityOrder(5));
    EXPECT_FALSE(r.feasible);
}

TEST(ListScheduler, PicksFasterMode)
{
    Model m;
    int g = m.addGroup("G");
    Task t;
    t.modes.push_back({kNoGroup, 5, {}});
    t.modes.push_back({g, 2, {}});
    m.addTask(t);
    m.setHorizon(10);
    ListResult r = listSchedule(m, identityOrder(1));
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.schedule.tasks[0].mode, 1);
    EXPECT_EQ(r.makespan, 2);
}

TEST(ListScheduler, ForcedModeIsHonoured)
{
    Model m;
    int g = m.addGroup("G");
    Task t;
    t.modes.push_back({kNoGroup, 5, {}});
    t.modes.push_back({g, 2, {}});
    m.addTask(t);
    m.setHorizon(10);
    ListResult r = listSchedule(m, identityOrder(1), {0});
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.schedule.tasks[0].mode, 0);
    EXPECT_EQ(r.makespan, 5);
}

TEST(ListScheduler, ParallelTasksOverlapAcrossGroups)
{
    Model m;
    int g1 = m.addGroup("G1");
    int g2 = m.addGroup("G2");
    Task a;
    a.modes.push_back({g1, 4, {}});
    m.addTask(a);
    Task b;
    b.modes.push_back({g2, 4, {}});
    m.addTask(b);
    m.setHorizon(10);
    ListResult r = listSchedule(m, identityOrder(2));
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.makespan, 4);
}

TEST(ListScheduler, ResourceCapacitySerializes)
{
    Model m;
    m.addResource(1.0, "r");
    for (int i = 0; i < 3; ++i) {
        Task t;
        t.modes.push_back({kNoGroup, 2, {1.0}});
        m.addTask(t);
    }
    m.setHorizon(10);
    ListResult r = listSchedule(m, identityOrder(3));
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.makespan, 6);
    EXPECT_EQ(checkSchedule(m, r.schedule), "");
}

TEST(BestGreedy, FindsFeasibleScheduleOnMixedModel)
{
    Model m;
    m.addResource(2.0, "cpu");
    int g = m.addGroup("GPU");
    for (int i = 0; i < 4; ++i) {
        Task setup;
        setup.name = "setup";
        setup.modes.push_back({kNoGroup, 1, {1.0}});
        int s = m.addTask(setup);
        Task compute;
        compute.name = "compute";
        compute.modes.push_back({g, 2, {0.0}});
        compute.modes.push_back({kNoGroup, 5, {2.0}});
        int c = m.addTask(compute);
        m.addPrecedence(s, c);
    }
    m.setHorizon(40);
    ListResult r = bestGreedy(m);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(checkSchedule(m, r.schedule), "");
    // Critical path is 1 (setup) + 2 (compute) = 3; the GPU load of
    // up to four 2-step computes plus the CPU alternative bounds the
    // makespan into [3, 12].
    EXPECT_GE(r.makespan, 3);
    EXPECT_LE(r.makespan, 12);
}

TEST(BestGreedy, InfeasibleModelReported)
{
    Model m = chainModel(8, 4);
    ListResult r = bestGreedy(m);
    EXPECT_FALSE(r.feasible);
}

TEST(ImproveGreedy, NeverWorsens)
{
    Model m;
    m.addResource(2.0, "cpu");
    int g = m.addGroup("GPU");
    for (int i = 0; i < 5; ++i) {
        Task t;
        t.modes.push_back({g, 2 + i % 3, {0.0}});
        t.modes.push_back({kNoGroup, 4, {1.0}});
        m.addTask(t);
    }
    m.setHorizon(30);
    ListResult greedy = bestGreedy(m);
    ASSERT_TRUE(greedy.feasible);
    ListResult improved = improveGreedy(m, greedy, 100);
    ASSERT_TRUE(improved.feasible);
    EXPECT_LE(improved.makespan, greedy.makespan);
    EXPECT_EQ(checkSchedule(m, improved.schedule), "");
}

TEST(ImproveGreedy, PassesThroughInfeasibleStart)
{
    Model m = chainModel(8, 4);
    ListResult bad;
    bad.feasible = false;
    ListResult out = improveGreedy(m, bad, 50);
    EXPECT_FALSE(out.feasible);
}

TEST(ImproveGreedy, ZeroIterationsIsIdentity)
{
    Model m = chainModel(3, 10);
    ListResult greedy = bestGreedy(m);
    ListResult out = improveGreedy(m, greedy, 0);
    EXPECT_EQ(out.makespan, greedy.makespan);
}

/**
 * Mode-forcing regression: the myopic rule picks the fast mode that
 * hogs the shared resource; the climber must discover that forcing
 * the slow low-usage mode enables overlap.
 */
TEST(ImproveGreedy, DiscoversResourceFriendlyModes)
{
    Model m;
    m.addResource(3.0, "power");
    int g1 = m.addGroup("A");
    int g2 = m.addGroup("B");
    // Task 0: fast mode uses all the power, slow mode uses little.
    Task t0;
    t0.modes.push_back({g1, 4, {3.0}});
    t0.modes.push_back({g1, 6, {1.0}});
    m.addTask(t0);
    // Task 1: only mode needs 2.0 power on another device.
    Task t1;
    t1.modes.push_back({g2, 6, {2.0}});
    m.addTask(t1);
    m.setHorizon(20);
    // Greedy: t0 fast (4 steps, 3.0 power) then t1 (6) -> 10 steps.
    // Optimal: t0 slow + t1 in parallel -> 6 steps.
    ListResult greedy = bestGreedy(m, 0);
    ASSERT_TRUE(greedy.feasible);
    ListResult improved = improveGreedy(m, greedy, 300);
    ASSERT_TRUE(improved.feasible);
    EXPECT_EQ(improved.makespan, 6);
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
